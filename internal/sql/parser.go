package sql

import (
	"strconv"
	"strings"

	"repro/internal/types"
)

// parser is a hand-rolled recursive-descent parser over the token
// stream. Expressions use precedence climbing (OR < AND < NOT <
// comparison < additive < multiplicative < unary). Statement-level
// errors synchronize at the next ';' so a script keeps parsing past a
// bad statement (error recovery).
type parser struct {
	toks   []token
	pos    int
	params int // ? placeholders seen so far (lexical ordinals)
}

// Parse parses a single statement (a trailing ';' is tolerated).
func Parse(text string) (Statement, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSym(";")
	if !p.at(tokEOF) {
		return nil, errAt(p.cur().pos, "unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

// ParseScript parses a ';'-separated statement list. A statement that
// fails to parse contributes an error and parsing resumes at the next
// ';' — the recovery that lets one bad statement in a script surface
// a diagnostic without hiding the rest.
func ParseScript(text string) ([]Statement, []error) {
	toks, lexErr := lex(text)
	if lexErr != nil {
		return nil, []error{lexErr}
	}
	p := &parser{toks: toks}
	var stmts []Statement
	var errs []error
	for !p.at(tokEOF) {
		if p.acceptSym(";") {
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			errs = append(errs, err)
			p.synchronize()
			continue
		}
		stmts = append(stmts, stmt)
		if !p.acceptSym(";") && !p.at(tokEOF) {
			errs = append(errs, errAt(p.cur().pos, "unexpected %s after statement", p.cur()))
			p.synchronize()
		}
	}
	return stmts, errs
}

// synchronize skips tokens through the next ';' (statement boundary).
func (p *parser) synchronize() {
	for !p.at(tokEOF) {
		if p.cur().kind == tokSymbol && p.cur().text == ";" {
			p.pos++
			return
		}
		p.pos++
	}
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

// atKeyword reports whether the current token is the given keyword
// (identifiers double as keywords, matched case-insensitively).
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errAt(p.cur().pos, "expected %s, got %s", kw, p.cur())
	}
	return nil
}

func (p *parser) acceptSym(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(sym string) error {
	if !p.acceptSym(sym) {
		return errAt(p.cur().pos, "expected %q, got %s", sym, p.cur())
	}
	return nil
}

func (p *parser) ident(what string) (string, error) {
	if p.cur().kind != tokIdent || reservedWord(p.cur().text) {
		return "", errAt(p.cur().pos, "expected %s, got %s", what, p.cur())
	}
	name := p.cur().text
	p.pos++
	return name, nil
}

// reservedWord lists the keywords that cannot be used as bare
// identifiers (keeps the grammar unambiguous without a lookahead).
func reservedWord(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN",
		"ON", "AS", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
		"CREATE", "TABLE", "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "IS",
		"NULL", "ASC", "DESC", "PRIMARY", "KEY", "TRUE", "FALSE":
		return true
	}
	return false
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	default:
		return nil, errAt(p.cur().pos, "expected a statement (SELECT, INSERT, UPDATE, DELETE, CREATE), got %s", p.cur())
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident("table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		if ref.Alias, err = p.ident("table alias"); err != nil {
			return TableRef{}, err
		}
	} else if p.cur().kind == tokIdent && !reservedWord(p.cur().text) {
		ref.Alias, _ = p.ident("table alias")
	}
	return ref, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.pos++ // SELECT
	stmt := &SelectStmt{Limit: -1}
	for {
		if p.acceptSym("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.ident("column alias")
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for p.acceptKeyword("JOIN") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, On: on})
	}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		tok := p.cur()
		if tok.kind != tokNumber || tok.isFloat {
			return nil, errAt(tok.pos, "LIMIT wants an integer, got %s", tok)
		}
		n, err := strconv.Atoi(tok.text)
		if err != nil {
			return nil, errAt(tok.pos, "LIMIT %q: %v", tok.text, err)
		}
		p.pos++
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.acceptSym("(") {
		for {
			col, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.pos++ // UPDATE
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col, Val: val})
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.pos++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseCreate() (*CreateTableStmt, error) {
	p.pos++ // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: table}
	for {
		name, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		kindTok := p.cur()
		if kindTok.kind != tokIdent {
			return nil, errAt(kindTok.pos, "expected a type, got %s", kindTok)
		}
		kind, ok := typeKind(kindTok.text)
		if !ok {
			return nil, errAt(kindTok.pos, "unknown type %q", kindTok.text)
		}
		p.pos++
		// SQL columns are nullable unless constrained otherwise.
		def := ColumnDef{Name: name, Kind: kind, Nullable: true}
		for {
			switch {
			case p.acceptKeyword("PRIMARY"):
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
			case p.acceptKeyword("NOT"):
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				def.Nullable = false
			case p.acceptKeyword("NULL"):
				def.Nullable = true
			default:
				goto doneCol
			}
		}
	doneCol:
		stmt.Cols = append(stmt.Cols, def)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// typeKind maps a SQL type name to a value kind.
func typeKind(name string) (types.Kind, bool) {
	switch strings.ToUpper(name) {
	case "BIGINT", "INT", "INTEGER":
		return types.KindInt64, true
	case "DOUBLE", "FLOAT", "REAL":
		return types.KindFloat64, true
	case "VARCHAR", "STRING", "TEXT":
		return types.KindString, true
	case "DATE":
		return types.KindDate, true
	case "BOOLEAN", "BOOL":
		return types.KindBool, true
	}
	return types.KindInvalid, false
}

// ---- expressions ----

// parseExpr parses an OR-level expression (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

// parseComparison parses additive [op additive], plus the predicate
// suffix forms: BETWEEN, IN, LIKE, IS [NOT] NULL.
func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol {
		switch op := p.cur().text; op {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: left, R: right}, nil
		}
	}
	not := false
	if p.atKeyword("NOT") {
		// Only consume NOT when a predicate suffix follows: NOT BETWEEN,
		// NOT IN, NOT LIKE.
		save := p.pos
		p.pos++
		if !p.atKeyword("BETWEEN") && !p.atKeyword("IN") && !p.atKeyword("LIKE") {
			p.pos = save
			return left, nil
		}
		not = true
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{E: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &InList{E: left, List: list, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: left, Pattern: pat, Not: not}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Not: isNot}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.cur().text
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so "-5" is a constant.
		if lit, ok := e.(*Literal); ok && !lit.Val.IsNull() {
			switch lit.Val.Kind {
			case types.KindInt64:
				return &Literal{Val: types.Int(-lit.Val.I)}, nil
			case types.KindFloat64:
				return &Literal{Val: types.Float(-lit.Val.F)}, nil
			}
		}
		return &Unary{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.kind {
	case tokNumber:
		p.pos++
		if tok.isFloat {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, errAt(tok.pos, "bad number %q: %v", tok.text, err)
			}
			return &Literal{Val: types.Float(f)}, nil
		}
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, errAt(tok.pos, "bad number %q: %v", tok.text, err)
		}
		return &Literal{Val: types.Int(n)}, nil
	case tokString:
		p.pos++
		return &Literal{Val: types.Str(tok.text)}, nil
	case tokParam:
		p.pos++
		e := &Param{Ord: p.params}
		p.params++
		return e, nil
	case tokSymbol:
		if tok.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch strings.ToUpper(tok.text) {
		case "NULL":
			p.pos++
			return &Literal{Val: types.Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: types.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: types.Bool(false)}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			// Aggregate call: NAME(*) or NAME(expr). A bare NAME not
			// followed by '(' would be an identifier, but the aggregate
			// names are reserved for clarity.
			fn := strings.ToUpper(tok.text)
			p.pos++
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			if fn == "COUNT" && p.acceptSym("*") {
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &Call{Func: fn, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &Call{Func: fn, Arg: arg}, nil
		}
		if reservedWord(tok.text) {
			return nil, errAt(tok.pos, "unexpected keyword %s in expression", tok)
		}
		p.pos++
		ref := &ColumnRef{Name: tok.text}
		if p.acceptSym(".") {
			col, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			ref.Table, ref.Name = ref.Name, col
		}
		return ref, nil
	}
	return nil, errAt(tok.pos, "unexpected %s in expression", tok)
}
