package sql

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
)

// TestStatementTimeout proves a statement exceeding the engine's
// Timeout comes back as the typed ErrStatementTimeout, not a bare
// context error.
func TestStatementTimeout(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 5000)
	e.SetLimits(Limits{Timeout: time.Nanosecond})
	// An aggregation over the whole table cannot finish in a
	// nanosecond; the deadline fires inside the scan.
	_, err := e.Exec(nil, "SELECT region, SUM(amount) FROM orders WHERE quantity >= 0 GROUP BY region")
	if !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("err = %v, want ErrStatementTimeout", err)
	}

	// Removing the limit restores normal execution.
	e.SetLimits(Limits{})
	if _, err := e.Exec(nil, "SELECT region, SUM(amount) FROM orders GROUP BY region"); err != nil {
		t.Fatalf("after clearing limits: %v", err)
	}
}

// TestStatementMemBudget proves an aggregation whose state exceeds
// MemBytes fails with budget.ErrBudgetExceeded instead of completing.
func TestStatementMemBudget(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 2000)
	e.SetLimits(Limits{MemBytes: 256})
	// Grouping by customer creates several groups; each charges well
	// over 256 bytes of aggregate state. The predicate keeps the plan
	// off the all-numeric vectorized kernel, which runs unbudgeted.
	_, err := e.Exec(nil, "SELECT customer, COUNT(*), SUM(amount) FROM orders WHERE quantity >= 0 GROUP BY customer")
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}

	// A generous budget admits the same statement.
	e.SetLimits(Limits{MemBytes: 64 << 20})
	if _, err := e.Exec(nil, "SELECT customer, COUNT(*) FROM orders WHERE quantity >= 0 GROUP BY customer"); err != nil {
		t.Fatalf("with generous budget: %v", err)
	}
}

// TestExecCtxKillCause proves a cancellation cause installed by the
// caller (the server's KILL path) surfaces from ExecCtx instead of a
// bare context.Canceled.
func TestExecCtxKillCause(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 100)
	errKilled := errors.New("killed by session 42")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errKilled)
	_, err := e.ExecCtx(ctx, nil, "SELECT COUNT(*) FROM orders")
	if !errors.Is(err, errKilled) {
		t.Fatalf("err = %v, want the KILL cause", err)
	}
}

// TestExecCtxCancelMidScan proves cancellation arriving while a scan
// is in flight stops the statement with its cause.
func TestExecCtxCancelMidScan(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 5000)
	errKilled := errors.New("killed mid-scan")
	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan error, 1)
	go func() {
		// Repeat until the cancel lands mid-statement.
		for {
			_, err := e.ExecCtx(ctx, nil,
				"SELECT region, SUM(amount) FROM orders WHERE quantity >= 0 GROUP BY region")
			if err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel(errKilled)
	select {
	case err := <-done:
		if !errors.Is(err, errKilled) {
			t.Fatalf("err = %v, want the KILL cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("statement did not observe cancellation")
	}
}

// TestDMLScanObservesCancel proves a predicate-scan DML statement
// (no point lookup) observes cancellation at its row stride.
func TestDMLScanObservesCancel(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 3000)
	errKilled := errors.New("killed DML")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errKilled)
	_, err := e.ExecCtx(ctx, nil, "UPDATE orders SET quantity = quantity + 1 WHERE quantity >= 0")
	if !errors.Is(err, errKilled) {
		t.Fatalf("err = %v, want the KILL cause", err)
	}
}

// TestLimitsTimeoutLeavesFastStatementsAlone proves a sane timeout
// does not affect statements that finish in time.
func TestLimitsTimeoutLeavesFastStatementsAlone(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 50)
	e.SetLimits(Limits{Timeout: 10 * time.Second, MemBytes: 64 << 20})
	res, err := e.Exec(nil, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 50 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
