package sql

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/calc"
	"repro/internal/core"
	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/types"
)

// maxCachedPlans bounds the plan cache; past it an arbitrary entry is
// evicted (statement sets in practice are tiny compared to this).
const maxCachedPlans = 1024

// Engine compiles and runs SQL against one database. It is safe for
// concurrent use: the cache holds immutable CompiledStmts and every
// execution plans its own calc graph (calc.Optimize mutates graphs in
// place, so graphs are never shared).
type Engine struct {
	db       *core.Database
	defaults core.TableConfig

	mu         sync.Mutex
	cache      map[string]*CompiledStmt
	limits     Limits
	slowThresh time.Duration

	slowLog slowRing

	hits    *obs.Counter
	misses  *obs.Counter
	slowCtr *obs.Counter
}

// NewEngine returns an engine over db. defaults seeds the TableConfig
// of CREATE TABLE statements (Name and Schema are overwritten per
// statement; merge thresholds, scan workers, etc. carry over).
func NewEngine(db *core.Database, defaults core.TableConfig) *Engine {
	reg := db.Metrics()
	return &Engine{
		db:       db,
		defaults: defaults,
		cache:    make(map[string]*CompiledStmt),
		hits:     reg.Counter("hana_sql_plan_cache_hits_total"),
		misses:   reg.Counter("hana_sql_plan_cache_misses_total"),
		slowCtr:  reg.Counter("hana_sql_slow_queries_total"),
	}
}

// DB returns the underlying database.
func (e *Engine) DB() *core.Database { return e.db }

// Result is the outcome of one statement.
type Result struct {
	// Cols names the result columns (nil for DML).
	Cols []string
	// Rows holds query output.
	Rows [][]types.Value
	// Affected counts rows written by DML.
	Affected int
}

// CacheStats reports plan-cache hit/miss totals and current size.
func (e *Engine) CacheStats() (hits, misses uint64, size int) {
	e.mu.Lock()
	size = len(e.cache)
	e.mu.Unlock()
	return e.hits.Value(), e.misses.Value(), size
}

// compile returns the cached compiled form of text, parsing and
// checking it on a miss. The cache key is the normalized text, so
// casing and whitespace variants share one entry.
func (e *Engine) compile(text string) (*CompiledStmt, error) {
	key := Normalize(text)
	e.mu.Lock()
	if cs, ok := e.cache[key]; ok {
		e.mu.Unlock()
		e.hits.Inc()
		return cs, nil
	}
	e.mu.Unlock()
	e.misses.Inc()
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	cs, err := Check(stmt, e.db)
	if err != nil {
		return nil, err
	}
	// DDL is never cached: its effect (the table existing) changes
	// what a re-check would produce, and it runs once.
	if _, ddl := stmt.(*CreateTableStmt); !ddl {
		e.mu.Lock()
		if len(e.cache) >= maxCachedPlans {
			for k := range e.cache {
				delete(e.cache, k)
				break
			}
		}
		e.cache[key] = cs
		e.mu.Unlock()
	}
	return cs, nil
}

// Exec compiles and runs one statement. With tx == nil, queries read
// their own statement snapshot and DML autocommits; with a session
// transaction, everything runs inside it (multi-statement SQL in
// BEGIN/COMMIT sessions).
func (e *Engine) Exec(tx *mvcc.Txn, text string, params ...types.Value) (*Result, error) {
	return e.ExecCtx(context.Background(), tx, text, params...)
}

// Prepared is a reusable handle to a compiled statement.
type Prepared struct {
	cs  *CompiledStmt
	eng *Engine
}

// Prepare compiles text for repeated execution with parameters.
func (e *Engine) Prepare(text string) (*Prepared, error) {
	cs, err := e.compile(text)
	if err != nil {
		return nil, err
	}
	return &Prepared{cs: cs, eng: e}, nil
}

// NumParams returns the number of ? placeholders.
func (p *Prepared) NumParams() int { return p.cs.NumParams }

// ParamKinds returns the inferred placeholder kinds in lexical order.
func (p *Prepared) ParamKinds() []types.Kind { return p.cs.ParamKinds }

// Columns returns the result column names (nil for DML).
func (p *Prepared) Columns() []string { return p.cs.OutCols }

// Exec runs the prepared statement with the given parameter values.
func (p *Prepared) Exec(tx *mvcc.Txn, params ...types.Value) (*Result, error) {
	return p.ExecCtx(context.Background(), tx, params...)
}

func (e *Engine) execCompiled(ctx context.Context, tx *mvcc.Txn, cs *CompiledStmt, params []types.Value, so *stmtObs) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	binds, err := bindParams(cs, params)
	if err != nil {
		return nil, err
	}
	switch s := cs.Stmt.(type) {
	case *SelectStmt:
		return e.execQuery(ctx, tx, cs, binds, so)
	case *InsertStmt:
		return e.autocommit(tx, func(tx *mvcc.Txn) (*Result, error) {
			return e.execInsert(tx, cs, s, binds)
		})
	case *UpdateStmt:
		return e.autocommit(tx, func(tx *mvcc.Txn) (*Result, error) {
			return e.execUpdate(ctx, tx, cs, s, binds)
		})
	case *DeleteStmt:
		return e.autocommit(tx, func(tx *mvcc.Txn) (*Result, error) {
			return e.execDelete(ctx, tx, cs, s, binds)
		})
	case *CreateTableStmt:
		return e.execCreate(s)
	}
	return nil, fmt.Errorf("sql: unsupported statement")
}

// bindParams validates arity and coerces each value to the inferred
// placeholder kind (int widens to float, int/string convert to date).
func bindParams(cs *CompiledStmt, params []types.Value) ([]types.Value, error) {
	if len(params) != cs.NumParams {
		return nil, fmt.Errorf("sql: statement wants %d parameters, got %d", cs.NumParams, len(params))
	}
	if cs.NumParams == 0 {
		return nil, nil
	}
	binds := make([]types.Value, len(params))
	for i, v := range params {
		want := cs.ParamKinds[i]
		switch {
		case v.IsNull() || v.Kind == want:
			binds[i] = v
		case want == types.KindFloat64 && v.Kind == types.KindInt64:
			binds[i] = types.Float(float64(v.I))
		case want == types.KindDate && v.Kind == types.KindInt64:
			binds[i] = types.Date(v.I)
		case want == types.KindDate && v.Kind == types.KindString:
			lit := Expr(&Literal{Val: v})
			if err := (&checker{}).toDate(&lit); err != nil {
				return nil, err
			}
			binds[i] = lit.(*Literal).Val
		default:
			return nil, fmt.Errorf("sql: parameter %d wants %v, got %v", i+1, want, v.Kind)
		}
	}
	return binds, nil
}

// autocommit wraps DML: a nil session transaction gets a fresh one
// committed on success and aborted on error.
func (e *Engine) autocommit(tx *mvcc.Txn, fn func(*mvcc.Txn) (*Result, error)) (*Result, error) {
	if tx != nil {
		return fn(tx)
	}
	own := e.db.Begin(mvcc.TxnSnapshot)
	res, err := fn(own)
	if err != nil {
		e.db.Abort(own)
		return nil, err
	}
	if err := e.db.Commit(own); err != nil {
		return nil, err
	}
	return res, nil
}

func (e *Engine) execQuery(ctx context.Context, tx *mvcc.Txn, cs *CompiledStmt, binds []types.Value, so *stmtObs) (*Result, error) {
	if tx == nil {
		// Statement-level snapshot for standalone reads.
		own := e.db.Begin(mvcc.StmtSnapshot)
		defer e.db.Abort(own)
		tx = own
	}
	g := calc.NewGraph()
	root, err := buildQuery(cs, g, binds)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("sql: internal plan error: %w", err)
	}
	g.Optimize()
	env := calc.Env{Txn: tx, Ctx: ctx}
	var qs *calc.QueryStats
	if so != nil {
		qs = calc.NewQueryStats()
		env.Stats = qs
	}
	rows, err := calc.Execute(g, root, env)
	if so != nil {
		// Render even on error: a killed or timed-out statement keeps
		// the actuals it accumulated up to the cancellation point.
		so.plan = g.ExplainAnalyze(root, qs)
		so.lines = g.StatsLines(root, qs)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Cols: cs.OutCols, Rows: rows}, nil
}

// Explain returns the optimized plan of a statement: the calc-graph
// rendering for queries, a one-line description for DML. Parameters
// are bound to zero values of their inferred kinds.
func (e *Engine) Explain(text string) (string, error) {
	cs, err := e.compile(text)
	if err != nil {
		return "", err
	}
	return e.staticPlan(cs, zeroBinds(cs))
}

// staticPlan renders the optimized plan without executing.
func (e *Engine) staticPlan(cs *CompiledStmt, binds []types.Value) (string, error) {
	switch s := cs.Stmt.(type) {
	case *SelectStmt:
		g := calc.NewGraph()
		root, err := buildQuery(cs, g, binds)
		if err != nil {
			return "", err
		}
		if err := g.Validate(); err != nil {
			return "", err
		}
		g.Optimize()
		return g.Explain(root), nil
	case *InsertStmt:
		return fmt.Sprintf("Insert[%s] rows=%d", s.Table, len(s.Rows)), nil
	case *UpdateStmt:
		return "Update[" + s.Table + "] " + dmlAccess(cs, s.Where, binds), nil
	case *DeleteStmt:
		return "Delete[" + s.Table + "] " + dmlAccess(cs, s.Where, binds), nil
	case *CreateTableStmt:
		return "CreateTable[" + s.Table + "]", nil
	}
	return "", fmt.Errorf("sql: unsupported statement")
}

// dmlAccess describes how UPDATE/DELETE locates its rows: a point
// lookup on the primary key or a predicate scan.
func dmlAccess(cs *CompiledStmt, where Expr, binds []types.Value) string {
	key := cs.table.Schema().Key
	if _, ok := keyPoint(where, key, binds); ok {
		return "point"
	}
	if where == nil {
		return "scan all"
	}
	pred, err := lowerPred(where, binds, 0)
	if err != nil {
		return "scan"
	}
	return "scan " + pred.String()
}

func zeroOf(k types.Kind) types.Value {
	switch k {
	case types.KindInt64:
		return types.Int(0)
	case types.KindFloat64:
		return types.Float(0)
	case types.KindString:
		return types.Str("")
	case types.KindDate:
		return types.Date(0)
	case types.KindBool:
		return types.Bool(false)
	}
	return types.Null
}

// ---- DML execution ----

func (e *Engine) execInsert(tx *mvcc.Txn, cs *CompiledStmt, s *InsertStmt, binds []types.Value) (*Result, error) {
	schema := cs.table.Schema()
	rows := make([][]types.Value, len(s.Rows))
	for ri, src := range s.Rows {
		row := make([]types.Value, schema.NumColumns())
		for i := range row {
			row[i] = types.Null
		}
		for i, valExpr := range src {
			v, ok := constEval(valExpr, binds)
			if !ok {
				return nil, fmt.Errorf("sql: INSERT value %s is not constant", valExpr)
			}
			row[s.colIdx[i]] = v
		}
		rows[ri] = row
	}
	if len(rows) == 1 {
		if _, err := cs.table.Insert(tx, rows[0]); err != nil {
			return nil, err
		}
	} else {
		if _, err := cs.table.BulkInsert(tx, rows); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(rows)}, nil
}

// keyPoint reports whether where is a point predicate on the primary
// key (key = const) and returns the key value.
func keyPoint(where Expr, keyIdx int, binds []types.Value) (types.Value, bool) {
	eq, ok := where.(*Binary)
	if !ok || eq.Op != "=" {
		return types.Null, false
	}
	if ref, ok := eq.L.(*ColumnRef); ok && ref.idx == keyIdx {
		if v, ok := constEval(eq.R, binds); ok {
			return v, true
		}
	}
	if ref, ok := eq.R.(*ColumnRef); ok && ref.idx == keyIdx {
		if v, ok := constEval(eq.L, binds); ok {
			return v, true
		}
	}
	return types.Null, false
}

// matchRows collects the (key, row) pairs satisfying where under tx's
// view. Matches are materialized before any mutation so UPDATE/DELETE
// never chase their own writes (the Halloween problem). Predicate
// scans observe ctx at a row stride so a KILL or timeout stops a
// table-wide DML scan mid-flight.
func matchRows(ctx context.Context, tx *mvcc.Txn, tab *core.Table, where Expr, binds []types.Value) ([]core.Match, error) {
	v := tab.View(tx)
	defer v.Close()
	if key, ok := keyPoint(where, tab.Schema().Key, binds); ok {
		if m := v.Get(key); m != nil {
			return []core.Match{{ID: m.ID, Row: types.CloneRow(m.Row)}}, nil
		}
		return nil, nil
	}
	var pred interface {
		Eval(row []types.Value) bool
	}
	if where != nil {
		p, err := lowerPred(where, binds, 0)
		if err != nil {
			return nil, err
		}
		pred = p
	}
	var out []core.Match
	var scanErr error
	seen := 0
	v.ScanAll(func(id types.RowID, row []types.Value) bool {
		if seen++; seen%1024 == 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		if pred == nil || pred.Eval(row) {
			out = append(out, core.Match{ID: id, Row: types.CloneRow(row)})
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

func (e *Engine) execUpdate(ctx context.Context, tx *mvcc.Txn, cs *CompiledStmt, s *UpdateStmt, binds []types.Value) (*Result, error) {
	matches, err := matchRows(ctx, tx, cs.table, s.Where, binds)
	if err != nil {
		return nil, err
	}
	key := cs.table.Schema().Key
	env := &evalEnv{
		binds: binds,
		col:   func(ref *ColumnRef, row []types.Value) types.Value { return row[ref.idx] },
	}
	for _, m := range matches {
		newRow := types.CloneRow(m.Row)
		for _, set := range s.Sets {
			// SET expressions see the pre-update row, per SQL semantics.
			v, err := evalScalar(set.Val, m.Row, env)
			if err != nil {
				return nil, err
			}
			newRow[set.idx] = v
		}
		if _, err := cs.table.UpdateKey(tx, m.Row[key], newRow); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(matches)}, nil
}

func (e *Engine) execDelete(ctx context.Context, tx *mvcc.Txn, cs *CompiledStmt, s *DeleteStmt, binds []types.Value) (*Result, error) {
	matches, err := matchRows(ctx, tx, cs.table, s.Where, binds)
	if err != nil {
		return nil, err
	}
	key := cs.table.Schema().Key
	affected := 0
	for _, m := range matches {
		n, err := cs.table.DeleteKey(tx, m.Row[key])
		if err != nil {
			return nil, err
		}
		affected += n
	}
	return &Result{Affected: affected}, nil
}

func (e *Engine) execCreate(s *CreateTableStmt) (*Result, error) {
	key := -1
	cols := make([]types.Column, len(s.Cols))
	for i, c := range s.Cols {
		if c.PrimaryKey {
			key = i
		}
		cols[i] = types.Column{Name: c.Name, Kind: c.Kind, Nullable: c.Nullable && !c.PrimaryKey}
	}
	schema, err := types.NewSchema(cols, key)
	if err != nil {
		return nil, err
	}
	cfg := e.defaults
	cfg.Name = s.Table
	cfg.Schema = schema
	if _, err := e.db.CreateTable(cfg); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// RenderRows formats query output rows for line protocols: one line
// per row, values separated by a single space (strings with spaces
// are single-quoted).
func RenderRows(rows [][]types.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			s := v.String()
			if v.Kind == types.KindString && (s == "" || strings.ContainsAny(s, " '")) {
				s = "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
			}
			parts[j] = s
		}
		out[i] = strings.Join(parts, " ")
	}
	return out
}
