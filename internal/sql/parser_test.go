package sql

import (
	"strings"
	"testing"
)

// TestParseCanonical pins the canonical rendering of parsed
// statements: uppercase keywords, fully parenthesized expressions.
func TestParseCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{
			"select a, b from t",
			"SELECT a, b FROM t",
		},
		{
			"SELECT * FROM t WHERE a = 1 AND b <> 'x'",
			"SELECT * FROM t WHERE ((a = 1) AND (b <> 'x'))",
		},
		{
			"select a+b*2 as c from t order by c desc limit 10",
			"SELECT (a + (b * 2)) AS c FROM t ORDER BY c DESC LIMIT 10",
		},
		{
			"select region, count(*), sum(v) from t where v >= 2.5 group by region",
			"SELECT region, COUNT(*), SUM(v) FROM t WHERE (v >= 2.5) GROUP BY region",
		},
		{
			"select o.id, c.name from orders o join customers as c on o.cust = c.id",
			"SELECT o.id, c.name FROM orders AS o JOIN customers AS c ON (o.cust = c.id)",
		},
		{
			"select a from t where a between 1 and 5 or b not in (1,2) or c like 'x%' or d is not null",
			"SELECT a FROM t WHERE ((((a BETWEEN 1 AND 5) OR (b NOT IN (1, 2))) OR (c LIKE 'x%')) OR (d IS NOT NULL))",
		},
		{
			"select a from t where not a = 1",
			"SELECT a FROM t WHERE NOT ((a = 1))",
		},
		{
			"select a from t where a != 1 -- comment\n",
			"SELECT a FROM t WHERE (a <> 1)",
		},
		{
			"insert into t (a, b) values (1, 'it''s'), (-2, null)",
			"INSERT INTO t (a, b) VALUES (1, 'it''s'), (-2, NULL)",
		},
		{
			"insert into t values (?, ?)",
			"INSERT INTO t VALUES (?, ?)",
		},
		{
			"update t set a = a + 1, b = 'y' where id = 3",
			"UPDATE t SET a = (a + 1), b = 'y' WHERE (id = 3)",
		},
		{
			"delete from t where a > 1e3",
			"DELETE FROM t WHERE (a > 1000)",
		},
		{
			"create table t (id int primary key, name varchar not null, v double, ok bool)",
			"CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR NOT NULL, v DOUBLE NULL, ok BOOLEAN NULL)",
		},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := stmt.String(); got != tc.want {
			t.Errorf("Parse(%q)\n  got  %q\n  want %q", tc.in, got, tc.want)
		}
	}
}

// TestParseRoundTrip checks render∘parse∘render is a fixed point.
func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"SELECT a, -b, COUNT(*) FROM t WHERE a IN (1, 2, 3) GROUP BY a ORDER BY 1, a DESC LIMIT 0",
		"SELECT * FROM t AS x JOIN u ON x.a = u.b WHERE x.c BETWEEN 0.5 AND 1.5e10",
		"UPDATE t SET a = ?, b = -(c / 2) WHERE NOT (a LIKE '_b%')",
		"SELECT a FROM t WHERE b = true OR b = false OR c IS NULL",
	}
	for _, in := range inputs {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		r1 := s1.String()
		s2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", r1, err)
		}
		if r2 := s2.String(); r1 != r2 {
			t.Errorf("unstable rendering:\n  first  %q\n  second %q", r1, r2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra stuff",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"UPDATE t a = 1",
		"DELETE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a WIBBLE)",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a = 1x",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT select FROM t",
		"DROP TABLE t",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error, got none", in)
		}
	}
}

// TestParseScriptRecovery checks that one bad statement doesn't hide
// the rest of a script.
func TestParseScriptRecovery(t *testing.T) {
	stmts, errs := ParseScript("SELECT FROM; SELECT a FROM t; ; BOGUS 1; DELETE FROM u")
	if len(stmts) != 2 {
		t.Fatalf("got %d statements, want 2", len(stmts))
	}
	if len(errs) != 2 {
		t.Fatalf("got %d errors (%v), want 2", len(errs), errs)
	}
	if got := stmts[0].String(); got != "SELECT a FROM t" {
		t.Errorf("first recovered statement = %q", got)
	}
	if got := stmts[1].String(); got != "DELETE FROM u" {
		t.Errorf("second recovered statement = %q", got)
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE a @ 1")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Pos != strings.IndexByte("SELECT a FROM t WHERE a @ 1", '@') {
		t.Errorf("error position %d, want offset of '@'", pe.Pos)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  a\nFROM t;", "select a from t"},
		{"select a from t", "select a from t"},
		{"SELECT 'A  b' FROM t", "select 'A  b' from t"},
		{"  SELECT a FROM t  ", "select a from t"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestParamOrdinals checks ? placeholders number in lexical order.
func TestParamOrdinals(t *testing.T) {
	stmt, err := Parse("UPDATE t SET a = ?, b = ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	var ords []int
	walkStmtExprs(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok {
			ords = append(ords, p.Ord)
		}
	})
	if len(ords) != 3 || ords[0] != 0 || ords[1] != 1 || ords[2] != 2 {
		t.Errorf("param ordinals = %v, want [0 1 2]", ords)
	}
}
