package sql

import (
	"fmt"
	"strings"

	"repro/internal/calc"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/types"
)

// The planner lowers a checked SELECT to a calc graph per execution.
// Graphs are cheap to build and calc.Optimize mutates them in place
// (filter/projection pushdown into table scans), so the cached
// CompiledStmt never holds a graph — it is re-planned from the
// immutable AST on every run, which is what makes one cache entry safe
// under concurrent sessions.
//
// Predicates lower to the native internal/expr forms wherever the
// shape allows (column vs constant), because those are the predicates
// the storage stages evaluate on dictionary codes; anything else falls
// back to an interpreted rowPred that the scan evaluates post-decode.
//
// Comparison semantics follow the engine's total order (types.Compare):
// NULL sorts before every non-NULL value and two NULLs are equal.
// There is no three-valued logic.

// buildQuery lowers a checked SELECT into g and returns the root node.
// binds holds the parameter values, already coerced to ParamKinds.
func buildQuery(cs *CompiledStmt, g *calc.Graph, binds []types.Value) (*calc.Node, error) {
	s := cs.Stmt.(*SelectStmt)
	sc := cs.scope

	// Split WHERE into single-table conjuncts (planted directly above
	// their table so calc.Optimize pushes them into the scan) and
	// multi-table residual conjuncts (filtered above the joins, where
	// ordinals are global because join output is left ++ right).
	perTable := make([][]Expr, len(sc.tables))
	var residual []Expr
	for _, conj := range conjuncts(s.Where) {
		if ti, ok := soleTable(conj, sc); ok {
			perTable[ti] = append(perTable[ti], conj)
		} else {
			residual = append(residual, conj)
		}
	}

	var root *calc.Node
	for ti, st := range sc.tables {
		node := g.Table(st.tab)
		if len(perTable[ti]) > 0 {
			pred, err := lowerConjuncts(perTable[ti], binds, st.offset)
			if err != nil {
				return nil, err
			}
			node = g.Filter(node, pred)
		}
		if ti == 0 {
			root = node
		} else {
			j := s.Joins[ti-1]
			root = g.Join(root, node, j.leftIdx, j.rightIdx)
		}
	}
	if len(residual) > 0 {
		pred, err := lowerConjuncts(residual, binds, 0)
		if err != nil {
			return nil, err
		}
		root = g.Filter(root, pred)
	}

	if s.aggregate {
		root = g.Aggregate(root, s.groupIdx, s.aggs...)
		node, err := projectAggregated(s, g, root, binds)
		if err != nil {
			return nil, err
		}
		root = node
	} else {
		node, err := projectPlain(s, g, root, binds)
		if err != nil {
			return nil, err
		}
		root = node
	}

	if len(s.OrderBy) > 0 {
		keys := make([]engine.SortSpec, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = engine.SortSpec{Col: k.outIdx, Desc: k.Desc}
		}
		root = g.Sort(root, keys...)
	}
	if s.Limit >= 0 {
		root = g.Limit(root, s.Limit)
	}
	return root, nil
}

// projectPlain maps select items over the scan output. All-column
// item lists become a Project node (so projection pushdown narrows the
// scan); computed items become a Script evaluating each expression.
func projectPlain(s *SelectStmt, g *calc.Graph, in *calc.Node, binds []types.Value) (*calc.Node, error) {
	allCols := true
	for _, it := range s.Items {
		if _, ok := it.Expr.(*ColumnRef); !ok {
			allCols = false
			break
		}
	}
	if allCols {
		cols := make([]int, len(s.Items))
		for i, it := range s.Items {
			cols[i] = it.Expr.(*ColumnRef).idx
		}
		return g.Project(in, cols...), nil
	}
	items := s.Items
	env := &evalEnv{
		binds: binds,
		col:   func(ref *ColumnRef, row []types.Value) types.Value { return row[ref.idx] },
	}
	return g.Script(in, scriptLabel(items), func(rows [][]types.Value) ([][]types.Value, error) {
		out := make([][]types.Value, len(rows))
		for ri, row := range rows {
			vals := make([]types.Value, len(items))
			for i, it := range items {
				v, err := evalScalar(it.Expr, row, env)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			out[ri] = vals
		}
		return out, nil
	}), nil
}

// projectAggregated maps select items over the aggregate output row
// (GROUP BY columns followed by aggregate slots). Identity layouts
// skip the extra node so the Aggregate(Table) fusion in calc exec
// keeps the morsel-parallel path.
func projectAggregated(s *SelectStmt, g *calc.Graph, in *calc.Node, binds []types.Value) (*calc.Node, error) {
	groupPos := func(globalIdx int) int {
		for i, gi := range s.groupIdx {
			if gi == globalIdx {
				return i
			}
		}
		return -1
	}
	// Fast path: every item is a bare group column or a bare aggregate.
	cols := make([]int, 0, len(s.Items))
	simple := true
	for _, it := range s.Items {
		switch x := it.Expr.(type) {
		case *ColumnRef:
			cols = append(cols, groupPos(x.idx))
		case *Call:
			cols = append(cols, len(s.groupIdx)+x.aggIdx)
		default:
			simple = false
		}
	}
	if simple {
		identity := len(cols) == len(s.groupIdx)+len(s.aggs)
		for i, c := range cols {
			if c != i {
				identity = false
			}
		}
		if identity {
			return in, nil
		}
		return g.Project(in, cols...), nil
	}
	items := s.Items
	env := &evalEnv{
		binds: binds,
		col: func(ref *ColumnRef, row []types.Value) types.Value {
			return row[groupPos(ref.idx)]
		},
		agg: func(call *Call, row []types.Value) types.Value {
			return row[len(s.groupIdx)+call.aggIdx]
		},
	}
	return g.Script(in, scriptLabel(items), func(rows [][]types.Value) ([][]types.Value, error) {
		out := make([][]types.Value, len(rows))
		for ri, row := range rows {
			vals := make([]types.Value, len(items))
			for i, it := range items {
				v, err := evalScalar(it.Expr, row, env)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			out[ri] = vals
		}
		return out, nil
	}), nil
}

func scriptLabel(items []SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.Expr.String()
	}
	return "eval(" + strings.Join(parts, ", ") + ")"
}

// conjuncts flattens a WHERE tree at its AND spine.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{e}
}

// soleTable reports which single scope table a conjunct touches, or
// false when it spans tables (or none — constant conjuncts stay
// residual, they are rare and harmless there).
func soleTable(e Expr, sc *scope) (int, bool) {
	ti := -1
	multi := false
	walkExpr(e, func(x Expr) {
		ref, ok := x.(*ColumnRef)
		if !ok {
			return
		}
		for i, t := range sc.tables {
			if ref.idx >= t.offset && ref.idx < t.offset+t.schema.NumColumns() {
				if ti >= 0 && ti != i {
					multi = true
				}
				ti = i
				return
			}
		}
	})
	if multi || ti < 0 {
		return 0, false
	}
	return ti, true
}

// ---- predicate lowering ----

func lowerConjuncts(list []Expr, binds []types.Value, offset int) (expr.Predicate, error) {
	if len(list) == 1 {
		return lowerPred(list[0], binds, offset)
	}
	and := make(expr.And, len(list))
	for i, e := range list {
		p, err := lowerPred(e, binds, offset)
		if err != nil {
			return nil, err
		}
		and[i] = p
	}
	return and, nil
}

// lowerPred compiles a boolean expression to an expr.Predicate over
// rows whose columns start at offset (0 for single-table scans; a
// table's scope offset when the predicate was pushed to that table).
func lowerPred(e Expr, binds []types.Value, offset int) (expr.Predicate, error) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := lowerPred(x.L, binds, offset)
			if err != nil {
				return nil, err
			}
			r, err := lowerPred(x.R, binds, offset)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" {
				return expr.And{l, r}, nil
			}
			return expr.Or{l, r}, nil
		case "=", "<>", "<", "<=", ">", ">=":
			if ref, ok := x.L.(*ColumnRef); ok {
				if v, ok := constEval(x.R, binds); ok {
					return expr.Cmp{Col: ref.idx - offset, Op: cmpOp(x.Op), Val: v}, nil
				}
			}
			if ref, ok := x.R.(*ColumnRef); ok {
				if v, ok := constEval(x.L, binds); ok {
					return expr.Cmp{Col: ref.idx - offset, Op: flipOp(cmpOp(x.Op)), Val: v}, nil
				}
			}
		}
	case *Unary:
		if x.Op == "NOT" {
			p, err := lowerPred(x.E, binds, offset)
			if err != nil {
				return nil, err
			}
			return expr.Not{P: p}, nil
		}
	case *Between:
		if ref, ok := x.E.(*ColumnRef); ok {
			lo, lok := constEval(x.Lo, binds)
			hi, hok := constEval(x.Hi, binds)
			if lok && hok {
				var p expr.Predicate = expr.Between{Col: ref.idx - offset, Lo: lo, Hi: hi, LoInc: true, HiInc: true}
				if x.Not {
					p = expr.Not{P: p}
				}
				return p, nil
			}
		}
	case *InList:
		if ref, ok := x.E.(*ColumnRef); ok {
			vals := make([]types.Value, 0, len(x.List))
			allConst := true
			for _, el := range x.List {
				v, ok := constEval(el, binds)
				if !ok {
					allConst = false
					break
				}
				vals = append(vals, v)
			}
			if allConst {
				var p expr.Predicate = expr.In{Col: ref.idx - offset, Vals: vals}
				if x.Not {
					p = expr.Not{P: p}
				}
				return p, nil
			}
		}
	case *LikeExpr:
		if ref, ok := x.E.(*ColumnRef); ok {
			if v, ok := constEval(x.Pattern, binds); ok && v.Kind == types.KindString {
				if prefix, ok := likePrefix(v.S); ok {
					var p expr.Predicate = expr.Like{Col: ref.idx - offset, Prefix: prefix}
					if x.Not {
						p = expr.Not{P: p}
					}
					return p, nil
				}
			}
		}
	case *IsNullExpr:
		if ref, ok := x.E.(*ColumnRef); ok {
			return expr.IsNull{Col: ref.idx - offset, Neg: x.Not}, nil
		}
	case *Literal:
		if x.Val.Kind == types.KindBool {
			return expr.Const(x.Val.AsBool()), nil
		}
	}
	// General fallback: interpret the expression per row. The storage
	// stages treat it as a residual predicate (no code pushdown) and
	// the scan keeps full row width.
	env := &evalEnv{
		binds: binds,
		col:   func(ref *ColumnRef, row []types.Value) types.Value { return row[ref.idx-offset] },
	}
	desc := e.String()
	return rowPred{
		desc: desc,
		fn: func(row []types.Value) bool {
			v, err := evalScalar(e, row, env)
			if err != nil {
				return false
			}
			return v.AsBool()
		},
	}, nil
}

// rowPred is an interpreted predicate for expressions with no native
// expr form. internal/expr leaves unknown predicate types in the scan
// residual, so it composes with pushdown transparently.
type rowPred struct {
	fn   func(row []types.Value) bool
	desc string
}

func (p rowPred) Eval(row []types.Value) bool { return p.fn(row) }
func (p rowPred) String() string              { return "sql(" + p.desc + ")" }

func cmpOp(op string) expr.Op {
	switch op {
	case "=":
		return expr.OpEq
	case "<>":
		return expr.OpNe
	case "<":
		return expr.OpLt
	case "<=":
		return expr.OpLe
	case ">":
		return expr.OpGt
	default:
		return expr.OpGe
	}
}

// flipOp mirrors an operator for "const op col" → "col op' const".
func flipOp(op expr.Op) expr.Op {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default:
		return op // = and <> are symmetric
	}
}

// likePrefix reports whether a LIKE pattern is a pure prefix match
// ("abc%": no '_', one trailing '%') and returns the prefix.
func likePrefix(pat string) (string, bool) {
	if len(pat) == 0 || pat[len(pat)-1] != '%' {
		return "", false
	}
	prefix := pat[:len(pat)-1]
	if strings.ContainsAny(prefix, "%_") {
		return "", false
	}
	return prefix, true
}

// ---- expression evaluation ----

// evalEnv supplies the bindings evalScalar needs: parameter values and
// the mapping from resolved references to positions in the row at hand
// (scan rows and aggregate output rows have different layouts).
type evalEnv struct {
	binds []types.Value
	col   func(ref *ColumnRef, row []types.Value) types.Value
	agg   func(call *Call, row []types.Value) types.Value
}

// constEval folds an expression with no column references to a value.
func constEval(e Expr, binds []types.Value) (types.Value, bool) {
	v, err := evalScalar(e, nil, &evalEnv{binds: binds})
	if err != nil {
		return types.Null, false
	}
	return v, true
}

// evalScalar interprets an expression over one row.
func evalScalar(e Expr, row []types.Value, env *evalEnv) (types.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Ord >= len(env.binds) {
			return types.Null, fmt.Errorf("sql: parameter %d not bound", x.Ord+1)
		}
		return env.binds[x.Ord], nil
	case *ColumnRef:
		if env.col == nil {
			return types.Null, fmt.Errorf("sql: column %s in constant context", x)
		}
		return env.col(x, row), nil
	case *Call:
		if env.agg == nil {
			return types.Null, fmt.Errorf("sql: aggregate %s outside aggregation", x)
		}
		return env.agg(x, row), nil
	case *Unary:
		v, err := evalScalar(x.E, row, env)
		if err != nil {
			return types.Null, err
		}
		if x.Op == "NOT" {
			return types.Bool(!v.AsBool()), nil
		}
		switch v.Kind {
		case types.KindInt64:
			return types.Int(-v.I), nil
		case types.KindFloat64:
			return types.Float(-v.F), nil
		case types.KindInvalid:
			return types.Null, nil
		}
		return types.Null, fmt.Errorf("sql: unary - on %v", v.Kind)
	case *Binary:
		return evalBinary(x, row, env)
	case *Between:
		v, err := evalScalar(x.E, row, env)
		if err != nil {
			return types.Null, err
		}
		lo, err := evalScalar(x.Lo, row, env)
		if err != nil {
			return types.Null, err
		}
		hi, err := evalScalar(x.Hi, row, env)
		if err != nil {
			return types.Null, err
		}
		in := compareVals(v, lo) >= 0 && compareVals(v, hi) <= 0
		return types.Bool(in != x.Not), nil
	case *InList:
		v, err := evalScalar(x.E, row, env)
		if err != nil {
			return types.Null, err
		}
		found := false
		for _, el := range x.List {
			ev, err := evalScalar(el, row, env)
			if err != nil {
				return types.Null, err
			}
			if compareVals(v, ev) == 0 {
				found = true
				break
			}
		}
		return types.Bool(found != x.Not), nil
	case *LikeExpr:
		v, err := evalScalar(x.E, row, env)
		if err != nil {
			return types.Null, err
		}
		pat, err := evalScalar(x.Pattern, row, env)
		if err != nil {
			return types.Null, err
		}
		// NULL matches as the empty string, mirroring the native
		// prefix predicate which sees the zero value.
		return types.Bool(likeMatch(v.S, pat.S) != x.Not), nil
	case *IsNullExpr:
		v, err := evalScalar(x.E, row, env)
		if err != nil {
			return types.Null, err
		}
		return types.Bool(v.IsNull() != x.Not), nil
	}
	return types.Null, fmt.Errorf("sql: cannot evaluate %s", e)
}

func evalBinary(x *Binary, row []types.Value, env *evalEnv) (types.Value, error) {
	l, err := evalScalar(x.L, row, env)
	if err != nil {
		return types.Null, err
	}
	switch x.Op {
	// AND/OR short-circuit on the left operand.
	case "AND":
		if !l.AsBool() {
			return types.Bool(false), nil
		}
		r, err := evalScalar(x.R, row, env)
		if err != nil {
			return types.Null, err
		}
		return types.Bool(r.AsBool()), nil
	case "OR":
		if l.AsBool() {
			return types.Bool(true), nil
		}
		r, err := evalScalar(x.R, row, env)
		if err != nil {
			return types.Null, err
		}
		return types.Bool(r.AsBool()), nil
	}
	r, err := evalScalar(x.R, row, env)
	if err != nil {
		return types.Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c := compareVals(l, r)
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return types.Bool(b), nil
	case "+", "-", "*", "/":
		return evalArith(x.Op, l, r)
	}
	return types.Null, fmt.Errorf("sql: unknown operator %s", x.Op)
}

// compareVals is types.Compare with numeric widening so int and float
// operands (possible in arithmetic results) compare without panicking.
func compareVals(a, b types.Value) int {
	if a.Kind == types.KindInt64 && b.Kind == types.KindFloat64 {
		a = types.Float(float64(a.I))
	} else if a.Kind == types.KindFloat64 && b.Kind == types.KindInt64 {
		b = types.Float(float64(b.I))
	}
	return types.Compare(a, b)
}

// evalArith applies an arithmetic operator. NULL propagates. Division
// always yields DOUBLE; the other operators stay BIGINT when both
// operands are, and widen to DOUBLE otherwise.
func evalArith(op string, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	numeric := func(v types.Value) (float64, bool) {
		switch v.Kind {
		case types.KindInt64:
			return float64(v.I), true
		case types.KindFloat64:
			return v.F, true
		}
		return 0, false
	}
	lf, lok := numeric(l)
	rf, rok := numeric(r)
	if !lok || !rok {
		return types.Null, fmt.Errorf("sql: %s on %v and %v", op, l.Kind, r.Kind)
	}
	if op == "/" {
		if rf == 0 {
			return types.Null, fmt.Errorf("sql: division by zero")
		}
		return types.Float(lf / rf), nil
	}
	if l.Kind == types.KindInt64 && r.Kind == types.KindInt64 {
		switch op {
		case "+":
			return types.Int(l.I + r.I), nil
		case "-":
			return types.Int(l.I - r.I), nil
		default:
			return types.Int(l.I * r.I), nil
		}
	}
	switch op {
	case "+":
		return types.Float(lf + rf), nil
	case "-":
		return types.Float(lf - rf), nil
	default:
		return types.Float(lf * rf), nil
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte).
func likeMatch(s, pat string) bool {
	// Iterative two-pointer match with backtracking on the last %.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
