package sql

import (
	"context"
	"errors"
	"strings"
	"time"

	"repro/internal/mvcc"
	"repro/internal/types"
)

// ErrStatementTimeout is returned when a statement exceeds the
// engine's configured Timeout. It is the context cause of the
// per-statement deadline, so it survives the trip through the scan
// layers (which surface plain ctx.Err()) and comes back typed.
var ErrStatementTimeout = errors.New("sql: statement timeout")

// Limits bounds every statement the engine runs: a wall-clock timeout
// (0 = none) and a memory budget in bytes (0 = unlimited) charged
// against hash-join builds, aggregation state, and decode caches.
type Limits struct {
	Timeout  time.Duration
	MemBytes int64
}

// SetLimits installs l for subsequent statements. Safe for concurrent
// use with executions; in-flight statements keep the limits they
// started with.
func (e *Engine) SetLimits(l Limits) {
	e.mu.Lock()
	e.limits = l
	e.mu.Unlock()
}

// CurrentLimits returns the limits applied to new statements.
func (e *Engine) CurrentLimits() Limits {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.limits
}

// ExecCtx is Exec under a context: cancellation (e.g. a session KILL)
// stops table scans at batch granularity, and the engine's Limits are
// layered on top — a timeout surfaces as ErrStatementTimeout, a
// memory overrun as budget.ErrBudgetExceeded.
func (e *Engine) ExecCtx(ctx context.Context, tx *mvcc.Txn, text string, params ...types.Value) (*Result, error) {
	if rest, analyze, ok := CutExplain(text); ok {
		return e.explainResult(ctx, tx, rest, analyze, params)
	}
	cs, err := e.compile(text)
	if err != nil {
		return nil, err
	}
	return e.execLimited(ctx, tx, cs, params)
}

// explainResult runs EXPLAIN [ANALYZE] as a statement: the plan comes
// back as one result row per line under a single "plan" column.
func (e *Engine) explainResult(ctx context.Context, tx *mvcc.Txn, text string, analyze bool, params []types.Value) (*Result, error) {
	var plan string
	var err error
	if analyze {
		plan, _, err = e.ExplainAnalyzeCtx(ctx, tx, text, params...)
	} else {
		plan, err = e.Explain(text)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		res.Rows = append(res.Rows, []types.Value{types.Str(line)})
	}
	return res, nil
}

// ExecCtx runs the prepared statement under a context with the
// engine's Limits applied; see Engine.ExecCtx.
func (p *Prepared) ExecCtx(ctx context.Context, tx *mvcc.Txn, params ...types.Value) (*Result, error) {
	return p.eng.execLimited(ctx, tx, p.cs, params)
}

// execLimited runs one statement with the engine's limits applied and
// no explicit stats collection — execObserved still arms collection
// by itself when a slow-query threshold is active, so a statement
// that crosses the threshold lands in the slow log with actuals.
func (e *Engine) execLimited(ctx context.Context, tx *mvcc.Txn, cs *CompiledStmt, params []types.Value) (*Result, error) {
	return e.execObserved(ctx, tx, cs, params, nil)
}
