package sql

import (
	"context"
	"errors"
	"time"

	"repro/internal/budget"
	"repro/internal/mvcc"
	"repro/internal/types"
)

// ErrStatementTimeout is returned when a statement exceeds the
// engine's configured Timeout. It is the context cause of the
// per-statement deadline, so it survives the trip through the scan
// layers (which surface plain ctx.Err()) and comes back typed.
var ErrStatementTimeout = errors.New("sql: statement timeout")

// Limits bounds every statement the engine runs: a wall-clock timeout
// (0 = none) and a memory budget in bytes (0 = unlimited) charged
// against hash-join builds, aggregation state, and decode caches.
type Limits struct {
	Timeout  time.Duration
	MemBytes int64
}

// SetLimits installs l for subsequent statements. Safe for concurrent
// use with executions; in-flight statements keep the limits they
// started with.
func (e *Engine) SetLimits(l Limits) {
	e.mu.Lock()
	e.limits = l
	e.mu.Unlock()
}

// CurrentLimits returns the limits applied to new statements.
func (e *Engine) CurrentLimits() Limits {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.limits
}

// ExecCtx is Exec under a context: cancellation (e.g. a session KILL)
// stops table scans at batch granularity, and the engine's Limits are
// layered on top — a timeout surfaces as ErrStatementTimeout, a
// memory overrun as budget.ErrBudgetExceeded.
func (e *Engine) ExecCtx(ctx context.Context, tx *mvcc.Txn, text string, params ...types.Value) (*Result, error) {
	cs, err := e.compile(text)
	if err != nil {
		return nil, err
	}
	return e.execLimited(ctx, tx, cs, params)
}

// ExecCtx runs the prepared statement under a context with the
// engine's Limits applied; see Engine.ExecCtx.
func (p *Prepared) ExecCtx(ctx context.Context, tx *mvcc.Txn, params ...types.Value) (*Result, error) {
	return p.eng.execLimited(ctx, tx, p.cs, params)
}

// execLimited wraps execCompiled with the engine's statement limits:
// it arms the per-statement deadline, attaches the memory meter to
// the context (every scan and build below charges it), and maps raw
// context errors back to their typed cause on the way out.
func (e *Engine) execLimited(ctx context.Context, tx *mvcc.Txn, cs *CompiledStmt, params []types.Value) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lim := e.CurrentLimits()
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, lim.Timeout, ErrStatementTimeout)
		defer cancel()
	}
	if m := budget.NewMeter(lim.MemBytes); m != nil {
		ctx = budget.WithMeter(ctx, m)
	}
	res, err := e.execCompiled(ctx, tx, cs, params)
	if err != nil {
		// Scans report bare ctx.Err(); the cause carries the typed
		// reason — ErrStatementTimeout for our deadline, or the KILL
		// cause installed by the caller's CancelCause.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			if cause := context.Cause(ctx); cause != nil {
				err = cause
			}
		}
		return nil, err
	}
	return res, nil
}
