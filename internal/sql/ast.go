package sql

import (
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/types"
)

// The AST is produced untyped by the parser; the checker then fills
// the unexported resolution fields in place (column ordinals, value
// kinds, aggregate codes). A checked statement is immutable: planning
// and execution only read it, which is what lets the Engine cache one
// checked AST and serve it to concurrent sessions.

// Statement is one SQL statement.
type Statement interface {
	stmtNode()
	// String renders the statement in canonical form: uppercase
	// keywords, single spaces, fully parenthesized expressions. The
	// renderer is a fixed point under re-parsing (FuzzSQLParse pins
	// render∘parse∘render = render).
	String() string
}

// Expr is a scalar or boolean expression.
type Expr interface {
	exprNode()
	String() string
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string

	idx  int // global ordinal in the joined input row (set by check)
	kind types.Kind
}

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// Param is a ? placeholder; Ord is its zero-based position in lexical
// order across the statement.
type Param struct {
	Ord int

	kind types.Kind // inferred from context (set by check)
}

// Unary is -expr or NOT expr.
type Unary struct {
	Op string // "-" or "NOT"
	E  Expr
}

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or connective (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

// Between is expr [NOT] BETWEEN lo AND hi (inclusive bounds).
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

// InList is expr [NOT] IN (e1, e2, ...).
type InList struct {
	E    Expr
	List []Expr
	Not  bool
}

// LikeExpr is expr [NOT] LIKE pattern, with % and _ wildcards.
type LikeExpr struct {
	E       Expr
	Pattern Expr
	Not     bool
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// Call is an aggregate invocation: COUNT(*), COUNT(col), SUM, MIN,
// MAX, AVG. Aggregates are the only function calls the language has.
type Call struct {
	Func string // canonical upper-case name
	Star bool   // COUNT(*)
	Arg  Expr   // nil when Star

	agg    engine.AggFunc // set by check
	aggIdx int            // slot in the aggregate output row (set by check)
}

func (*ColumnRef) exprNode()  {}
func (*Literal) exprNode()    {}
func (*Param) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Between) exprNode()    {}
func (*InList) exprNode()     {}
func (*LikeExpr) exprNode()   {}
func (*IsNullExpr) exprNode() {}
func (*Call) exprNode()       {}

// SelectItem is one projection: * or an expression with an optional
// alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// JoinClause is one INNER JOIN arm with an equality ON condition.
type JoinClause struct {
	Table TableRef
	On    Expr // must check to leftCol = rightCol

	leftIdx  int // global ordinal on the accumulated left side
	rightIdx int // ordinal local to the joined table
}

// OrderKey orders the output by one select-list column.
type OrderKey struct {
	// Expr is a column name, alias, or 1-based output position.
	Expr Expr
	Desc bool

	outIdx int // resolved output ordinal (set by check)
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderKey
	Limit   int // -1 = none

	// Filled by check for aggregate queries: whether aggregation
	// applies, the global input ordinals of the GROUP BY columns, and
	// the deduplicated aggregate calls with their engine specs. The
	// aggregate output row is groupIdx columns followed by aggs.
	aggregate bool
	groupIdx  []int
	aggCalls  []*Call
	aggs      []engine.Agg
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string // nil = schema order
	Rows  [][]Expr

	colIdx []int // target ordinals (set by check)
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col string
	Val Expr

	idx int // column ordinal (set by check)
}

// UpdateStmt is UPDATE t SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ColumnDef is one column of CREATE TABLE.
type ColumnDef struct {
	Name       string
	Kind       types.Kind
	Nullable   bool
	PrimaryKey bool
}

// CreateTableStmt is CREATE TABLE t (col TYPE [PRIMARY KEY] [NULL|NOT NULL], ...).
type CreateTableStmt struct {
	Table string
	Cols  []ColumnDef
}

func (*SelectStmt) stmtNode()      {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}

// ---- canonical rendering ----

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Literal) String() string {
	v := l.Val
	switch v.Kind {
	case types.KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case types.KindDate:
		return "'" + v.String() + "'"
	default:
		// Ints, floats (strconv 'g' -1 round-trips exactly), bools, NULL.
		return v.String()
	}
}

func (p *Param) String() string { return "?" }

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT (" + u.E.String() + ")"
	}
	return "-(" + u.E.String() + ")"
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

func maybeNot(not bool) string {
	if not {
		return " NOT"
	}
	return ""
}

func (b *Between) String() string {
	return "(" + b.E.String() + maybeNot(b.Not) + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return "(" + in.E.String() + maybeNot(in.Not) + " IN (" + strings.Join(parts, ", ") + "))"
}

func (l *LikeExpr) String() string {
	return "(" + l.E.String() + maybeNot(l.Not) + " LIKE " + l.Pattern.String() + ")"
}

func (n *IsNullExpr) String() string {
	return "(" + n.E.String() + " IS" + maybeNot(n.Not) + " NULL)"
}

func (c *Call) String() string {
	if c.Star {
		return c.Func + "(*)"
	}
	return c.Func + "(" + c.Arg.String() + ")"
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + s.From.String())
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Table.String() + " ON " + j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, e := range s.GroupBy {
			parts[i] = e.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			parts[i] = k.Expr.String()
			if k.Desc {
				parts[i] += " DESC"
			}
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	}
	return b.String()
}

func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + s.Table)
	if len(s.Cols) > 0 {
		b.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		parts := make([]string, len(row))
		for j, e := range row {
			parts[j] = e.String()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	return b.String()
}

func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE " + s.Table + " SET ")
	for i, set := range s.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(set.Col + " = " + set.Val.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	return b.String()
}

func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

func (s *CreateTableStmt) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Kind.String()
		if c.PrimaryKey {
			parts[i] += " PRIMARY KEY"
		} else if !c.Nullable {
			parts[i] += " NOT NULL"
		} else {
			parts[i] += " NULL"
		}
	}
	return "CREATE TABLE " + s.Table + " (" + strings.Join(parts, ", ") + ")"
}
