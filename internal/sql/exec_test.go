package sql

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/types"
)

func testEngine(t testing.TB, defaults core.TableConfig) *Engine {
	t.Helper()
	db, err := core.OpenDatabase(core.DBOptions{Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return NewEngine(db, defaults)
}

func mustExec(t testing.TB, e *Engine, tx *mvcc.Txn, text string, params ...types.Value) *Result {
	t.Helper()
	res, err := e.Exec(tx, text, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", text, err)
	}
	return res
}

// ordersEngine creates the paper-style orders table and seeds it via
// SQL itself.
func ordersEngine(t testing.TB, defaults core.TableConfig, rows int) *Engine {
	t.Helper()
	e := testEngine(t, defaults)
	mustExec(t, e, nil, `CREATE TABLE orders (
		id BIGINT PRIMARY KEY,
		customer VARCHAR NOT NULL,
		region VARCHAR NOT NULL,
		quantity BIGINT NOT NULL,
		amount DOUBLE NOT NULL)`)
	regions := []string{"EMEA", "APJ", "AMER"}
	ins, err := e.Prepare("INSERT INTO orders VALUES (?, ?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		_, err := ins.Exec(nil,
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("cust-%d", i%7)),
			types.Str(regions[i%3]),
			types.Int(int64(i%5)),
			types.Float(float64(i)*1.5),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestEndToEndCRUD(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 30)

	res := mustExec(t, e, nil, "SELECT id, region FROM orders WHERE id < 3 ORDER BY id")
	if !reflect.DeepEqual(res.Cols, []string{"id", "region"}) {
		t.Errorf("cols = %v", res.Cols)
	}
	want := [][]types.Value{
		{types.Int(0), types.Str("EMEA")},
		{types.Int(1), types.Str("APJ")},
		{types.Int(2), types.Str("AMER")},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}

	res = mustExec(t, e, nil, "UPDATE orders SET quantity = quantity + 100 WHERE region = 'APJ'")
	if res.Affected != 10 {
		t.Errorf("update affected %d, want 10", res.Affected)
	}
	res = mustExec(t, e, nil, "SELECT COUNT(*) FROM orders WHERE quantity >= 100")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 10 {
		t.Errorf("post-update count = %v", res.Rows)
	}

	res = mustExec(t, e, nil, "DELETE FROM orders WHERE id = 0")
	if res.Affected != 1 {
		t.Errorf("point delete affected %d, want 1", res.Affected)
	}
	res = mustExec(t, e, nil, "DELETE FROM orders WHERE region = 'AMER'")
	if res.Affected != 10 {
		t.Errorf("scan delete affected %d, want 10", res.Affected)
	}
	res = mustExec(t, e, nil, "SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].I != 19 {
		t.Errorf("final count = %v, want 19", res.Rows[0][0])
	}
}

func TestSelectExpressions(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 10)
	res := mustExec(t, e, nil,
		"SELECT id, amount * 2 AS double_amount, quantity + 1 FROM orders WHERE id BETWEEN 2 AND 4 ORDER BY id DESC")
	if !reflect.DeepEqual(res.Cols, []string{"id", "double_amount", "(quantity + 1)"}) {
		t.Errorf("cols = %v", res.Cols)
	}
	want := [][]types.Value{
		{types.Int(4), types.Float(12), types.Int(5)},
		{types.Int(3), types.Float(9), types.Int(4)},
		{types.Int(2), types.Float(6), types.Int(3)},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}

	// LIMIT after ORDER BY; ORDER BY 1-based position.
	res = mustExec(t, e, nil, "SELECT id FROM orders ORDER BY 1 DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 9 || res.Rows[1][0].I != 8 {
		t.Errorf("order/limit rows = %v", res.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 60)
	res := mustExec(t, e, nil,
		`SELECT region, COUNT(*), SUM(quantity), MIN(id), MAX(id), AVG(amount)
		 FROM orders WHERE id < 30 GROUP BY region ORDER BY region`)
	// Compute the oracle by hand over the seeded data.
	type acc struct {
		n, sum, min, max int64
		amtSum           float64
	}
	oracle := map[string]*acc{}
	regions := []string{"EMEA", "APJ", "AMER"}
	for i := int64(0); i < 30; i++ {
		r := regions[i%3]
		a := oracle[r]
		if a == nil {
			a = &acc{min: i, max: i}
			oracle[r] = a
		}
		a.n++
		a.sum += i % 5
		if i < a.min {
			a.min = i
		}
		if i > a.max {
			a.max = i
		}
		a.amtSum += float64(i) * 1.5
		if a.n == 1 {
			a.min, a.max = i, i
		}
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups, want 3: %v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		r := row[0].S
		a := oracle[r]
		if a == nil {
			t.Fatalf("unexpected group %q", r)
		}
		if row[1].I != a.n || row[2].I != a.sum || row[3].I != a.min || row[4].I != a.max {
			t.Errorf("group %s = %v, want count=%d sum=%d min=%d max=%d", r, row, a.n, a.sum, a.min, a.max)
		}
		if avg := a.amtSum / float64(a.n); row[5].F != avg {
			t.Errorf("group %s avg = %v, want %v", r, row[5].F, avg)
		}
	}

	// Expression over aggregates (Script projection path).
	res = mustExec(t, e, nil,
		"SELECT region, SUM(amount) / COUNT(*) AS manual_avg FROM orders GROUP BY region ORDER BY region")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].Kind != types.KindFloat64 {
			t.Errorf("manual_avg kind = %v", row[1].Kind)
		}
	}
}

func TestJoin(t *testing.T) {
	e := testEngine(t, core.TableConfig{})
	mustExec(t, e, nil, "CREATE TABLE customers (id BIGINT PRIMARY KEY, name VARCHAR NOT NULL, tier BIGINT NOT NULL)")
	mustExec(t, e, nil, "CREATE TABLE orders (id BIGINT PRIMARY KEY, cust BIGINT NOT NULL, amount DOUBLE NOT NULL)")
	mustExec(t, e, nil, "INSERT INTO customers VALUES (1, 'acme', 1), (2, 'globex', 2), (3, 'umbrella', 1)")
	mustExec(t, e, nil, "INSERT INTO orders VALUES (10, 1, 5.0), (11, 2, 7.5), (12, 1, 2.5), (13, 3, 9.0)")

	res := mustExec(t, e, nil,
		`SELECT o.id, c.name FROM orders AS o JOIN customers AS c ON o.cust = c.id
		 WHERE c.tier = 1 AND o.amount > 3 ORDER BY o.id`)
	want := [][]types.Value{
		{types.Int(10), types.Str("acme")},
		{types.Int(13), types.Str("umbrella")},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("join rows = %v, want %v", res.Rows, want)
	}

	// Aggregate over a join.
	res = mustExec(t, e, nil,
		"SELECT c.name, SUM(o.amount) FROM orders AS o JOIN customers AS c ON o.cust = c.id GROUP BY c.name ORDER BY c.name")
	want = [][]types.Value{
		{types.Str("acme"), types.Float(7.5)},
		{types.Str("globex"), types.Float(7.5)},
		{types.Str("umbrella"), types.Float(9)},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("join agg rows = %v, want %v", res.Rows, want)
	}
}

func TestPrepareAndPlanCache(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 10)
	h0, m0, _ := e.CacheStats()

	p, err := e.Prepare("SELECT id FROM orders WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 || p.ParamKinds()[0] != types.KindInt64 {
		t.Errorf("params = %d %v", p.NumParams(), p.ParamKinds())
	}
	for i := int64(0); i < 5; i++ {
		res, err := p.Exec(nil, types.Int(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != i {
			t.Errorf("param %d rows = %v", i, res.Rows)
		}
	}
	// Same normalized text → cache hit despite casing/whitespace.
	mustExec(t, e, nil, "select id  from orders where id = ?", types.Int(1))
	h1, m1, size := e.CacheStats()
	if h1-h0 < 1 {
		t.Errorf("cache hits %d → %d, want an increase", h0, h1)
	}
	if m1-m0 != 1 {
		t.Errorf("cache misses %d → %d, want exactly one new entry", m0, m1)
	}
	if size == 0 {
		t.Error("cache is empty")
	}

	// Parameter coercion: int binds to a DOUBLE placeholder.
	res := mustExec(t, e, nil, "SELECT COUNT(*) FROM orders WHERE amount > ?", types.Int(3))
	if res.Rows[0][0].I == 0 {
		t.Errorf("coerced param query returned %v", res.Rows)
	}
	// Arity mismatch surfaces as an error.
	if _, err := e.Exec(nil, "SELECT id FROM orders WHERE id = ?"); err == nil {
		t.Error("expected arity error")
	}
}

func TestTransactionScope(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 5)
	db := e.DB()

	// Aborted transaction leaves no trace.
	tx := db.Begin(mvcc.TxnSnapshot)
	mustExec(t, e, tx, "INSERT INTO orders VALUES (100, 'x', 'EMEA', 1, 1.0)")
	mustExec(t, e, tx, "UPDATE orders SET amount = 0 WHERE id = 1")
	res := mustExec(t, e, tx, "SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].I != 6 {
		t.Errorf("in-txn count = %v, want 6", res.Rows[0][0])
	}
	db.Abort(tx)
	res = mustExec(t, e, nil, "SELECT COUNT(*) FROM orders")
	if res.Rows[0][0].I != 5 {
		t.Errorf("post-abort count = %v, want 5", res.Rows[0][0])
	}

	// Committed transaction applies atomically.
	tx = db.Begin(mvcc.TxnSnapshot)
	mustExec(t, e, tx, "INSERT INTO orders VALUES (100, 'x', 'EMEA', 1, 1.0)")
	mustExec(t, e, tx, "DELETE FROM orders WHERE id = 0")
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, e, nil, "SELECT id FROM orders ORDER BY id DESC LIMIT 1")
	if res.Rows[0][0].I != 100 {
		t.Errorf("post-commit max id = %v", res.Rows[0][0])
	}
}

func TestCheckErrors(t *testing.T) {
	e := ordersEngine(t, core.TableConfig{}, 1)
	bad := []string{
		"SELECT nope FROM orders",
		"SELECT id FROM nope",
		"SELECT o.id FROM orders",                                    // unknown qualifier
		"SELECT id FROM orders WHERE region > 5",                     // kind mismatch
		"SELECT id FROM orders WHERE id",                             // non-boolean WHERE
		"SELECT id, COUNT(*) FROM orders",                            // bare col in aggregate query
		"SELECT SUM(region) FROM orders",                             // SUM over string
		"SELECT id FROM orders ORDER BY nope",                        // unresolved order key
		"SELECT id FROM orders ORDER BY 3",                           // position out of range
		"SELECT SUM(id + 1) FROM orders",                             // non-column agg arg
		"INSERT INTO orders VALUES (1, 'a', 'b', 2)",                 // arity
		"INSERT INTO orders (id, id) VALUES (1, 2)",                  // dup column
		"INSERT INTO orders VALUES (1, 'a', 'b', 'x', 1.0)",          // kind mismatch
		"UPDATE orders SET nope = 1",                                 // unknown set column
		"SELECT id FROM orders WHERE id = ? AND region = ?1",         // bad token
		"SELECT a.id FROM orders AS a JOIN orders AS a ON a.id = a.id", // dup alias
		"SELECT id FROM orders AS a JOIN orders AS b ON a.id < b.id", // non-equality join
		"CREATE TABLE t2 (a BIGINT PRIMARY KEY, b BIGINT PRIMARY KEY)",
	}
	for _, in := range bad {
		if _, err := e.Exec(nil, in); err == nil {
			t.Errorf("Exec(%q): expected error, got none", in)
		}
	}
	// Unresolvable parameter kind.
	if _, err := e.Exec(nil, "SELECT id FROM orders WHERE ? = ?"); err == nil {
		t.Error("expected parameter-inference error")
	}
}

func TestDateCoercion(t *testing.T) {
	e := testEngine(t, core.TableConfig{})
	mustExec(t, e, nil, "CREATE TABLE events (id BIGINT PRIMARY KEY, day DATE NOT NULL)")
	mustExec(t, e, nil, "INSERT INTO events VALUES (1, '2026-01-15'), (2, '2026-03-01')")
	res := mustExec(t, e, nil, "SELECT id FROM events WHERE day < '2026-02-01'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Errorf("date filter rows = %v", res.Rows)
	}
	// String parameter binds to a DATE placeholder.
	res = mustExec(t, e, nil, "SELECT COUNT(*) FROM events WHERE day >= ?", types.Str("2026-01-01"))
	if res.Rows[0][0].I != 2 {
		t.Errorf("date param count = %v", res.Rows)
	}
	if _, err := e.Exec(nil, "SELECT id FROM events WHERE day = 'not-a-date'"); err == nil {
		t.Error("expected bad-date error")
	}
}

// TestSQLGroupByUsesMorselParallelPath is the acceptance check from
// the issue: a SQL grouped aggregate over a filtered scan must compile
// to the batch morsel-parallel path, observed via the engine's
// parallel-scan counter.
func TestSQLGroupByUsesMorselParallelPath(t *testing.T) {
	defaults := core.TableConfig{ScanWorkers: 4, ScanMorselRows: 64}
	e := ordersEngine(t, defaults, 600)
	reg := e.DB().Metrics()
	counter := reg.Counter("hana_parallel_scans_total", obs.L("table", "orders"))

	before := counter.Value()
	res := mustExec(t, e, nil,
		"SELECT region, COUNT(*), SUM(quantity) FROM orders WHERE quantity >= 1 GROUP BY region")
	if after := counter.Value(); after <= before {
		t.Errorf("hana_parallel_scans_total %d → %d: SQL aggregate did not take the morsel-parallel path", before, after)
	}

	// The numbers must still be right: compare against the oracle.
	oracle := map[string][2]int64{}
	regions := []string{"EMEA", "APJ", "AMER"}
	for i := int64(0); i < 600; i++ {
		if q := i % 5; q >= 1 {
			a := oracle[regions[i%3]]
			a[0]++
			a[1] += q
			oracle[regions[i%3]] = a
		}
	}
	if len(res.Rows) != len(oracle) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(oracle))
	}
	for _, row := range res.Rows {
		want := oracle[row[0].S]
		if row[1].I != want[0] || row[2].I != want[1] {
			t.Errorf("group %s = [%v %v], want %v", row[0].S, row[1], row[2], want)
		}
	}
}

func TestRenderRows(t *testing.T) {
	rows := [][]types.Value{
		{types.Int(1), types.Str("plain"), types.Float(2.5)},
		{types.Str("has space"), types.Str(""), types.Null},
	}
	got := RenderRows(rows)
	want := []string{"1 plain 2.5", "'has space' '' NULL"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RenderRows = %q, want %q", got, want)
	}
}
