package sql

import (
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/types"
)

// Catalog resolves table names to unified tables. *core.Database
// satisfies it; tests can supply a fixture catalog.
type Catalog interface {
	Table(name string) *core.Table
}

// CompiledStmt is a checked, immutable statement: the AST with all
// resolution fields filled, plus the metadata the engine needs to bind
// parameters and shape results. One CompiledStmt is shared by every
// concurrent execution of the same (normalized) statement text — the
// planner builds a fresh calc graph per execution, so nothing here is
// mutated after Check returns.
type CompiledStmt struct {
	// Text is the normalized statement text (the plan-cache key).
	Text string
	// Stmt is the checked AST.
	Stmt Statement
	// NumParams is the number of ? placeholders.
	NumParams int
	// ParamKinds holds the inferred kind of each placeholder, in
	// lexical order.
	ParamKinds []types.Kind
	// OutCols names the result columns of a SELECT (nil for DML).
	OutCols []string

	scope *scope     // SELECT: resolved FROM/JOIN tables
	table *core.Table // DML: the target table
}

// scopeTable is one table visible to name resolution, with the offset
// of its first column in the joined row (join output is the
// concatenation left columns ++ right columns).
type scopeTable struct {
	name   string
	alias  string // alias, or name when none
	schema *types.Schema
	offset int
	tab    *core.Table
}

type scope struct {
	tables []scopeTable
	width  int
}

func (s *scope) add(ref TableRef, tab *core.Table) error {
	alias := ref.Alias
	if alias == "" {
		alias = ref.Name
	}
	for _, t := range s.tables {
		if t.alias == alias {
			return errAt(0, "duplicate table name or alias %q (use AS to disambiguate)", alias)
		}
	}
	s.tables = append(s.tables, scopeTable{
		name:   ref.Name,
		alias:  alias,
		schema: tab.Schema(),
		offset: s.width,
		tab:    tab,
	})
	s.width += tab.Schema().NumColumns()
	return nil
}

// resolve fills ref.idx (global ordinal) and ref.kind.
func (s *scope) resolve(ref *ColumnRef) error {
	if ref.Table != "" {
		for _, t := range s.tables {
			if t.alias != ref.Table {
				continue
			}
			i := t.schema.ColumnIndex(ref.Name)
			if i < 0 {
				return errAt(0, "table %q has no column %q", ref.Table, ref.Name)
			}
			ref.idx = t.offset + i
			ref.kind = t.schema.Columns[i].Kind
			return nil
		}
		return errAt(0, "unknown table %q", ref.Table)
	}
	found := false
	for _, t := range s.tables {
		i := t.schema.ColumnIndex(ref.Name)
		if i < 0 {
			continue
		}
		if found {
			return errAt(0, "ambiguous column %q (qualify with a table name)", ref.Name)
		}
		found = true
		ref.idx = t.offset + i
		ref.kind = t.schema.Columns[i].Kind
	}
	if !found {
		return errAt(0, "unknown column %q", ref.Name)
	}
	return nil
}

// columnKind returns the kind of global ordinal idx.
func (s *scope) columnKind(idx int) types.Kind {
	for _, t := range s.tables {
		if idx >= t.offset && idx < t.offset+t.schema.NumColumns() {
			return t.schema.Columns[idx-t.offset].Kind
		}
	}
	return types.KindInvalid
}

// checker runs the semantic pass: name resolution, literal coercion,
// parameter-kind inference, and aggregate-query shape rules.
type checker struct {
	cat    Catalog
	params []types.Kind
}

// Check resolves stmt against cat and returns the compiled form.
// The AST is mutated in place (resolution fields) and must not be
// re-checked against a different catalog.
func Check(stmt Statement, cat Catalog) (*CompiledStmt, error) {
	c := &checker{cat: cat, params: make([]types.Kind, countParams(stmt))}
	cs := &CompiledStmt{Stmt: stmt, Text: Normalize(stmt.String())}
	var err error
	switch s := stmt.(type) {
	case *SelectStmt:
		err = c.checkSelect(s, cs)
	case *InsertStmt:
		err = c.checkInsert(s, cs)
	case *UpdateStmt:
		err = c.checkUpdate(s, cs)
	case *DeleteStmt:
		err = c.checkDelete(s, cs)
	case *CreateTableStmt:
		err = c.checkCreate(s)
	}
	if err != nil {
		return nil, err
	}
	for i, k := range c.params {
		if !k.Valid() {
			return nil, errAt(0, "cannot infer the type of parameter %d from context", i+1)
		}
	}
	cs.NumParams = len(c.params)
	cs.ParamKinds = c.params
	return cs, nil
}

// countParams walks the statement counting ? placeholders.
func countParams(stmt Statement) int {
	n := 0
	walkStmtExprs(stmt, func(e Expr) {
		if _, ok := e.(*Param); ok {
			n++
		}
	})
	return n
}

func walkStmtExprs(stmt Statement, fn func(Expr)) {
	switch s := stmt.(type) {
	case *SelectStmt:
		for _, it := range s.Items {
			walkExpr(it.Expr, fn)
		}
		for i := range s.Joins {
			walkExpr(s.Joins[i].On, fn)
		}
		walkExpr(s.Where, fn)
		for _, e := range s.GroupBy {
			walkExpr(e, fn)
		}
		for _, k := range s.OrderBy {
			walkExpr(k.Expr, fn)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *UpdateStmt:
		for _, set := range s.Sets {
			walkExpr(set.Val, fn)
		}
		walkExpr(s.Where, fn)
	case *DeleteStmt:
		walkExpr(s.Where, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		walkExpr(x.E, fn)
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Between:
		walkExpr(x.E, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *InList:
		walkExpr(x.E, fn)
		for _, el := range x.List {
			walkExpr(el, fn)
		}
	case *LikeExpr:
		walkExpr(x.E, fn)
		walkExpr(x.Pattern, fn)
	case *IsNullExpr:
		walkExpr(x.E, fn)
	case *Call:
		walkExpr(x.Arg, fn)
	}
}

func (c *checker) lookupTable(name string) (*core.Table, error) {
	t := c.cat.Table(name)
	if t == nil {
		return nil, errAt(0, "unknown table %q", name)
	}
	return t, nil
}

// ---- SELECT ----

func (c *checker) checkSelect(s *SelectStmt, cs *CompiledStmt) error {
	sc := &scope{}
	tab, err := c.lookupTable(s.From.Name)
	if err != nil {
		return err
	}
	if err := sc.add(s.From, tab); err != nil {
		return err
	}
	for i := range s.Joins {
		j := &s.Joins[i]
		// Resolve the ON condition with the joined table NOT yet in
		// scope on the left: it must be leftCol = rightCol with one
		// side from the accumulated left input and one from the newly
		// joined table.
		jt, err := c.lookupTable(j.Table.Name)
		if err != nil {
			return err
		}
		leftWidth := sc.width
		if err := sc.add(j.Table, jt); err != nil {
			return err
		}
		eq, ok := j.On.(*Binary)
		if !ok || eq.Op != "=" {
			return errAt(0, "JOIN ON must be an equality between two columns")
		}
		lref, lok := eq.L.(*ColumnRef)
		rref, rok := eq.R.(*ColumnRef)
		if !lok || !rok {
			return errAt(0, "JOIN ON must be an equality between two columns")
		}
		if err := sc.resolve(lref); err != nil {
			return err
		}
		if err := sc.resolve(rref); err != nil {
			return err
		}
		// Normalize so lref is the accumulated-left side.
		if lref.idx >= leftWidth && rref.idx < leftWidth {
			lref, rref = rref, lref
		}
		if lref.idx >= leftWidth || rref.idx < leftWidth {
			return errAt(0, "JOIN ON must relate the joined table %q to a table on its left", j.Table.Name)
		}
		if lref.kind != rref.kind {
			return errAt(0, "JOIN ON compares %v with %v", lref.kind, rref.kind)
		}
		j.leftIdx = lref.idx
		j.rightIdx = rref.idx - leftWidth
	}
	cs.scope = sc

	// Expand * into explicit column references, in scope order.
	var items []SelectItem
	for _, it := range s.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, t := range sc.tables {
			for _, col := range t.schema.Columns {
				items = append(items, SelectItem{Expr: &ColumnRef{Name: col.Name, Table: t.alias}})
			}
		}
	}
	s.Items = items

	if s.Where != nil {
		k, err := c.checkExpr(s.Where, sc, false)
		if err != nil {
			return err
		}
		if k != types.KindBool {
			return errAt(0, "WHERE wants a boolean, got %v", k)
		}
	}

	// GROUP BY columns.
	for _, e := range s.GroupBy {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return errAt(0, "GROUP BY supports plain columns, got %s", e)
		}
		if err := sc.resolve(ref); err != nil {
			return err
		}
		s.groupIdx = append(s.groupIdx, ref.idx)
	}

	// Detect aggregation and collect the aggregate calls.
	hasAgg := false
	for _, it := range s.Items {
		walkExpr(it.Expr, func(e Expr) {
			if _, ok := e.(*Call); ok {
				hasAgg = true
			}
		})
	}
	s.aggregate = hasAgg || len(s.GroupBy) > 0

	for i := range s.Items {
		it := &s.Items[i]
		k, err := c.checkExpr(it.Expr, sc, s.aggregate)
		if err != nil {
			return err
		}
		_ = k
		if s.aggregate {
			if err := c.checkGroupedExpr(it.Expr, s); err != nil {
				return err
			}
			collectAggs(it.Expr, s)
		}
		cs.OutCols = append(cs.OutCols, itemName(*it))
	}

	// ORDER BY keys resolve against the output columns: by 1-based
	// position, alias, column name, or rendered expression text.
	for i := range s.OrderBy {
		key := &s.OrderBy[i]
		idx, err := resolveOrderKey(key.Expr, s.Items, cs.OutCols)
		if err != nil {
			return err
		}
		key.outIdx = idx
	}
	return nil
}

// itemName is the output column name: alias, bare column name, or the
// rendered expression.
func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if ref, ok := it.Expr.(*ColumnRef); ok {
		return ref.Name
	}
	return it.Expr.String()
}

func resolveOrderKey(e Expr, items []SelectItem, names []string) (int, error) {
	switch x := e.(type) {
	case *Literal:
		if x.Val.Kind != types.KindInt64 {
			return 0, errAt(0, "ORDER BY literal must be a 1-based column position")
		}
		n := int(x.Val.I)
		if n < 1 || n > len(items) {
			return 0, errAt(0, "ORDER BY position %d out of range 1..%d", n, len(items))
		}
		return n - 1, nil
	case *ColumnRef:
		if x.Table == "" {
			for i, name := range names {
				if name == x.Name {
					return i, nil
				}
			}
		}
	}
	// Fall back to structural match against the rendered item text.
	want := e.String()
	for i, it := range items {
		if it.Expr.String() == want {
			return i, nil
		}
	}
	return 0, errAt(0, "ORDER BY key %s is not in the select list", e)
}

// checkGroupedExpr enforces the aggregate-query rule: outside an
// aggregate call, only GROUP BY columns may be referenced.
func (c *checker) checkGroupedExpr(e Expr, s *SelectStmt) error {
	if e == nil {
		return nil
	}
	if _, ok := e.(*Call); ok {
		return nil // aggregate args may reference any column
	}
	if ref, ok := e.(*ColumnRef); ok {
		for _, g := range s.groupIdx {
			if g == ref.idx {
				return nil
			}
		}
		return errAt(0, "column %s must appear in GROUP BY or inside an aggregate", ref)
	}
	var err error
	walkChildren(e, func(child Expr) {
		if err == nil {
			err = c.checkGroupedExpr(child, s)
		}
	})
	return err
}

// walkChildren visits the direct children of e.
func walkChildren(e Expr, fn func(Expr)) {
	switch x := e.(type) {
	case *Unary:
		fn(x.E)
	case *Binary:
		fn(x.L)
		fn(x.R)
	case *Between:
		fn(x.E)
		fn(x.Lo)
		fn(x.Hi)
	case *InList:
		fn(x.E)
		for _, el := range x.List {
			fn(el)
		}
	case *LikeExpr:
		fn(x.E)
		fn(x.Pattern)
	case *IsNullExpr:
		fn(x.E)
	case *Call:
		fn(x.Arg)
	}
}

// collectAggs registers every aggregate call in e on the statement,
// deduplicating by rendered text so SUM(v) appearing twice computes
// once. Each call records its slot in the aggregate output row.
func collectAggs(e Expr, s *SelectStmt) {
	walkExpr(e, func(x Expr) {
		call, ok := x.(*Call)
		if !ok {
			return
		}
		text := call.String()
		for i, prev := range s.aggCalls {
			if prev.String() == text {
				call.aggIdx = i
				return
			}
		}
		call.aggIdx = len(s.aggCalls)
		s.aggCalls = append(s.aggCalls, call)
		col := 0
		if !call.Star {
			col = call.Arg.(*ColumnRef).idx
		}
		s.aggs = append(s.aggs, engine.Agg{Func: call.agg, Col: col})
	})
}

// ---- expression checking ----

// checkExpr resolves names, coerces literals, infers parameter kinds,
// and returns the expression's kind. inAgg permits aggregate calls.
func (c *checker) checkExpr(e Expr, sc *scope, inAgg bool) (types.Kind, error) {
	switch x := e.(type) {
	case *ColumnRef:
		if err := sc.resolve(x); err != nil {
			return 0, err
		}
		return x.kind, nil
	case *Literal:
		return x.Val.Kind, nil // KindInvalid = NULL, coerced by context
	case *Param:
		return c.params[x.Ord], nil // KindInvalid until inferred
	case *Unary:
		k, err := c.checkExpr(x.E, sc, inAgg)
		if err != nil {
			return 0, err
		}
		if x.Op == "NOT" {
			if k != types.KindBool {
				return 0, errAt(0, "NOT wants a boolean, got %v", k)
			}
			return types.KindBool, nil
		}
		if k != types.KindInt64 && k != types.KindFloat64 {
			return 0, errAt(0, "unary - wants a number, got %v", k)
		}
		return k, nil
	case *Binary:
		return c.checkBinary(x, sc, inAgg)
	case *Between:
		if _, err := c.coercePair(&x.E, &x.Lo, sc, inAgg); err != nil {
			return 0, err
		}
		if _, err := c.coercePair(&x.E, &x.Hi, sc, inAgg); err != nil {
			return 0, err
		}
		return types.KindBool, nil
	case *InList:
		for i := range x.List {
			if _, err := c.coercePair(&x.E, &x.List[i], sc, inAgg); err != nil {
				return 0, err
			}
		}
		return types.KindBool, nil
	case *LikeExpr:
		k, err := c.checkExpr(x.E, sc, inAgg)
		if err != nil {
			return 0, err
		}
		if k != types.KindString {
			return 0, errAt(0, "LIKE wants a string, got %v", k)
		}
		pk, err := c.checkExpr(x.Pattern, sc, inAgg)
		if err != nil {
			return 0, err
		}
		if pk == types.KindInvalid {
			if p, ok := x.Pattern.(*Param); ok {
				c.params[p.Ord] = types.KindString
				pk = types.KindString
			}
		}
		if pk != types.KindString {
			return 0, errAt(0, "LIKE pattern wants a string, got %v", pk)
		}
		return types.KindBool, nil
	case *IsNullExpr:
		if _, err := c.checkExpr(x.E, sc, inAgg); err != nil {
			return 0, err
		}
		return types.KindBool, nil
	case *Call:
		return c.checkCall(x, sc, inAgg)
	}
	return 0, errAt(0, "unsupported expression %s", e)
}

func (c *checker) checkBinary(x *Binary, sc *scope, inAgg bool) (types.Kind, error) {
	switch x.Op {
	case "AND", "OR":
		for _, side := range []Expr{x.L, x.R} {
			k, err := c.checkExpr(side, sc, inAgg)
			if err != nil {
				return 0, err
			}
			if k != types.KindBool {
				return 0, errAt(0, "%s wants booleans, got %v", x.Op, k)
			}
		}
		return types.KindBool, nil
	case "=", "<>", "<", "<=", ">", ">=":
		if _, err := c.coercePair(&x.L, &x.R, sc, inAgg); err != nil {
			return 0, err
		}
		return types.KindBool, nil
	case "+", "-", "*", "/":
		lk, err := c.checkExpr(x.L, sc, inAgg)
		if err != nil {
			return 0, err
		}
		rk, err := c.checkExpr(x.R, sc, inAgg)
		if err != nil {
			return 0, err
		}
		// Infer numeric parameters as the other side's kind (or float).
		if lk == types.KindInvalid {
			lk, err = c.inferNumericParam(x.L, rk)
			if err != nil {
				return 0, err
			}
		}
		if rk == types.KindInvalid {
			rk, err = c.inferNumericParam(x.R, lk)
			if err != nil {
				return 0, err
			}
		}
		for _, k := range []types.Kind{lk, rk} {
			if k != types.KindInt64 && k != types.KindFloat64 {
				return 0, errAt(0, "%s wants numbers, got %v", x.Op, k)
			}
		}
		if x.Op == "/" || lk == types.KindFloat64 || rk == types.KindFloat64 {
			return types.KindFloat64, nil
		}
		return types.KindInt64, nil
	}
	return 0, errAt(0, "unknown operator %s", x.Op)
}

func (c *checker) inferNumericParam(e Expr, other types.Kind) (types.Kind, error) {
	p, ok := e.(*Param)
	if !ok {
		return 0, errAt(0, "cannot infer the type of %s", e)
	}
	k := other
	if k != types.KindInt64 && k != types.KindFloat64 {
		k = types.KindFloat64
	}
	c.params[p.Ord] = k
	p.kind = k
	return k, nil
}

func (c *checker) checkCall(x *Call, sc *scope, inAgg bool) (types.Kind, error) {
	if !inAgg {
		return 0, errAt(0, "aggregate %s is only allowed in a grouped SELECT list", x.Func)
	}
	switch x.Func {
	case "COUNT":
		x.agg = engine.AggCount
	case "SUM":
		x.agg = engine.AggSum
	case "MIN":
		x.agg = engine.AggMin
	case "MAX":
		x.agg = engine.AggMax
	case "AVG":
		x.agg = engine.AggAvg
	default:
		return 0, errAt(0, "unknown function %s", x.Func)
	}
	if x.Star {
		return types.KindInt64, nil
	}
	ref, ok := x.Arg.(*ColumnRef)
	if !ok {
		return 0, errAt(0, "%s wants a plain column argument, got %s", x.Func, x.Arg)
	}
	if err := sc.resolve(ref); err != nil {
		return 0, err
	}
	switch x.agg {
	case engine.AggCount:
		return types.KindInt64, nil
	case engine.AggAvg:
		return types.KindFloat64, nil
	case engine.AggSum:
		if ref.kind != types.KindInt64 && ref.kind != types.KindFloat64 {
			return 0, errAt(0, "SUM wants a numeric column, got %v", ref.kind)
		}
		return ref.kind, nil
	default: // MIN/MAX follow the column kind
		return ref.kind, nil
	}
}

// coercePair checks both sides of a comparison and rewrites literals
// (or infers parameters) so both sides share one kind — types.Compare
// requires kind agreement for non-NULL values.
func (c *checker) coercePair(l, r *Expr, sc *scope, inAgg bool) (types.Kind, error) {
	lk, err := c.checkExpr(*l, sc, inAgg)
	if err != nil {
		return 0, err
	}
	rk, err := c.checkExpr(*r, sc, inAgg)
	if err != nil {
		return 0, err
	}
	if lk == rk {
		return lk, nil
	}
	// One side untyped: NULL literal (stays NULL) or parameter.
	if lk == types.KindInvalid {
		return c.adoptKind(l, rk)
	}
	if rk == types.KindInvalid {
		return c.adoptKind(r, lk)
	}
	// Numeric widening: the int side becomes float.
	if lk == types.KindInt64 && rk == types.KindFloat64 {
		return rk, c.toFloat(l)
	}
	if rk == types.KindInt64 && lk == types.KindFloat64 {
		return lk, c.toFloat(r)
	}
	// Date literals: a string or int literal against a DATE column.
	if lk == types.KindDate && c.toDate(r) == nil {
		return lk, nil
	}
	if rk == types.KindDate && c.toDate(l) == nil {
		return rk, nil
	}
	return 0, errAt(0, "cannot compare %v with %v", lk, rk)
}

// adoptKind assigns kind k to an untyped side: a NULL literal keeps
// its NULL value (compares fine), a parameter records k for binding.
func (c *checker) adoptKind(e *Expr, k types.Kind) (types.Kind, error) {
	switch x := (*e).(type) {
	case *Literal:
		if x.Val.IsNull() {
			return k, nil
		}
	case *Param:
		c.params[x.Ord] = k
		x.kind = k
		return k, nil
	}
	return 0, errAt(0, "cannot infer the type of %s", *e)
}

// toFloat rewrites an int literal to float, or infers a float param.
func (c *checker) toFloat(e *Expr) error {
	switch x := (*e).(type) {
	case *Literal:
		if x.Val.Kind == types.KindInt64 {
			*e = &Literal{Val: types.Float(float64(x.Val.I))}
			return nil
		}
	case *Param:
		c.params[x.Ord] = types.KindFloat64
		x.kind = types.KindFloat64
		return nil
	case *Unary, *Binary:
		return nil // arithmetic coerces at evaluation time
	}
	return errAt(0, "cannot coerce %s to DOUBLE", *e)
}

// toDate rewrites a 'YYYY-MM-DD' string literal or day-count int
// literal to a DATE value, or infers a date param.
func (c *checker) toDate(e *Expr) error {
	switch x := (*e).(type) {
	case *Literal:
		switch x.Val.Kind {
		case types.KindString:
			t, err := time.Parse("2006-01-02", x.Val.S)
			if err != nil {
				return errAt(0, "bad date literal %q (want YYYY-MM-DD)", x.Val.S)
			}
			*e = &Literal{Val: types.DateOf(t)}
			return nil
		case types.KindInt64:
			*e = &Literal{Val: types.Date(x.Val.I)}
			return nil
		}
	case *Param:
		c.params[x.Ord] = types.KindDate
		x.kind = types.KindDate
		return nil
	}
	return errAt(0, "cannot coerce %s to DATE", *e)
}

// ---- DML ----

func (c *checker) checkInsert(s *InsertStmt, cs *CompiledStmt) error {
	tab, err := c.lookupTable(s.Table)
	if err != nil {
		return err
	}
	cs.table = tab
	schema := tab.Schema()
	if s.Cols == nil {
		s.colIdx = make([]int, schema.NumColumns())
		for i := range s.colIdx {
			s.colIdx[i] = i
		}
	} else {
		seen := map[int]bool{}
		for _, name := range s.Cols {
			i := schema.ColumnIndex(name)
			if i < 0 {
				return errAt(0, "table %q has no column %q", s.Table, name)
			}
			if seen[i] {
				return errAt(0, "column %q listed twice", name)
			}
			seen[i] = true
			s.colIdx = append(s.colIdx, i)
		}
	}
	empty := &scope{} // VALUES expressions cannot reference columns
	for _, row := range s.Rows {
		if len(row) != len(s.colIdx) {
			return errAt(0, "INSERT row has %d values, want %d", len(row), len(s.colIdx))
		}
		for i := range row {
			want := schema.Columns[s.colIdx[i]].Kind
			if err := c.coerceTo(&row[i], want, empty); err != nil {
				return err
			}
		}
	}
	return nil
}

// coerceTo checks a value expression against a target column kind.
func (c *checker) coerceTo(e *Expr, want types.Kind, sc *scope) error {
	k, err := c.checkExpr(*e, sc, false)
	if err != nil {
		return err
	}
	if k == want {
		return nil
	}
	if k == types.KindInvalid {
		_, err := c.adoptKind(e, want)
		return err
	}
	if want == types.KindFloat64 && k == types.KindInt64 {
		return c.toFloat(e)
	}
	if want == types.KindDate && (k == types.KindString || k == types.KindInt64) {
		return c.toDate(e)
	}
	return errAt(0, "column wants %v, got %v", want, k)
}

func (c *checker) checkUpdate(s *UpdateStmt, cs *CompiledStmt) error {
	tab, err := c.lookupTable(s.Table)
	if err != nil {
		return err
	}
	cs.table = tab
	schema := tab.Schema()
	if schema.Key < 0 {
		return errAt(0, "UPDATE requires a table with a primary key")
	}
	sc := &scope{}
	if err := sc.add(TableRef{Name: s.Table}, tab); err != nil {
		return err
	}
	cs.scope = sc
	for i := range s.Sets {
		set := &s.Sets[i]
		idx := schema.ColumnIndex(set.Col)
		if idx < 0 {
			return errAt(0, "table %q has no column %q", s.Table, set.Col)
		}
		set.idx = idx
		if err := c.coerceTo(&set.Val, schema.Columns[idx].Kind, sc); err != nil {
			return err
		}
	}
	return c.checkWhere(s.Where, sc)
}

func (c *checker) checkDelete(s *DeleteStmt, cs *CompiledStmt) error {
	tab, err := c.lookupTable(s.Table)
	if err != nil {
		return err
	}
	cs.table = tab
	if tab.Schema().Key < 0 {
		return errAt(0, "DELETE requires a table with a primary key")
	}
	sc := &scope{}
	if err := sc.add(TableRef{Name: s.Table}, tab); err != nil {
		return err
	}
	cs.scope = sc
	return c.checkWhere(s.Where, sc)
}

func (c *checker) checkWhere(where Expr, sc *scope) error {
	if where == nil {
		return nil
	}
	k, err := c.checkExpr(where, sc, false)
	if err != nil {
		return err
	}
	if k != types.KindBool {
		return errAt(0, "WHERE wants a boolean, got %v", k)
	}
	return nil
}

func (c *checker) checkCreate(s *CreateTableStmt) error {
	key := -1
	for i, col := range s.Cols {
		if col.PrimaryKey {
			if key >= 0 {
				return errAt(0, "multiple PRIMARY KEY columns")
			}
			key = i
		}
	}
	cols := make([]types.Column, len(s.Cols))
	for i, col := range s.Cols {
		cols[i] = types.Column{Name: col.Name, Kind: col.Kind, Nullable: col.Nullable && i != key}
	}
	if _, err := types.NewSchema(cols, key); err != nil {
		return errAt(0, "%v", err)
	}
	return nil
}

// Normalize canonicalizes statement text for plan-cache keying:
// whitespace collapses to single spaces and everything outside string
// literals is lowercased, so the same statement with different casing
// or spacing shares one cache entry.
func Normalize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	inStr := false
	space := false
	for i := 0; i < len(text); i++ {
		ch := text[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		if ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		if ch == '\'' {
			inStr = true
		} else if ch >= 'A' && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		b.WriteByte(ch)
	}
	return strings.TrimSuffix(strings.TrimSpace(b.String()), ";")
}
