package sql

import "testing"

// FuzzSQLParse drives the lexer and parser with arbitrary input. Two
// invariants: parsing never panics, and for accepted input the
// canonical rendering is a fixed point — parse(render(ast)) renders
// to the same text (the property the plan cache and the golden corpus
// rely on).
func FuzzSQLParse(f *testing.F) {
	seeds := []string{
		"SELECT a, b FROM t",
		"SELECT * FROM t WHERE a = 1 AND b <> 'x''y'",
		"SELECT region, COUNT(*), SUM(v) FROM t WHERE v >= 2.5 GROUP BY region ORDER BY 2 DESC LIMIT 10",
		"SELECT o.id, c.name FROM orders AS o JOIN customers AS c ON o.cust = c.id",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 5 OR b NOT IN (1, 2) OR c LIKE 'x%' OR d IS NOT NULL",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)",
		"UPDATE t SET a = a + 1, b = ? WHERE id = 3",
		"DELETE FROM t WHERE a > 1e3",
		"CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR NOT NULL, v DOUBLE NULL)",
		"SELECT -a FROM t WHERE NOT (a = 1) -- trailing comment",
		"SELECT a FROM t WHERE b = true OR c = false OR d IS NULL;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejected input only needs to not panic
		}
		r1 := stmt.String()
		stmt2, err := Parse(r1)
		if err != nil {
			t.Fatalf("canonical rendering does not re-parse\ninput:  %q\nrender: %q\nerror:  %v", src, r1, err)
		}
		if r2 := stmt2.String(); r1 != r2 {
			t.Fatalf("rendering is not a fixed point\ninput:  %q\nfirst:  %q\nsecond: %q", src, r1, r2)
		}
		// ParseScript must accept what Parse accepts.
		stmts, errs := ParseScript(src)
		if len(errs) > 0 || len(stmts) != 1 {
			t.Fatalf("ParseScript disagrees with Parse on %q: %d stmts, errs=%v", src, len(stmts), errs)
		}
	})
}
