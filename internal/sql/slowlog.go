package sql

import (
	"sync"
	"time"
	"unicode/utf8"
)

// slowLogCap bounds the slow-query ring: old entries are overwritten,
// never freed en masse — the log survives bursts without growing.
const slowLogCap = 128

// slowSQLCap bounds the captured statement text: a bulk multi-VALUES
// INSERT can run to megabytes, and the ring must stay cheap to hold
// and cheap to render.
const slowSQLCap = 512

// SlowEntry is one captured slow statement: what ran, how long it
// took, how it ended, and the plan annotated with actuals (collection
// is armed automatically whenever a slow threshold is active, so the
// plan always carries per-operator numbers).
type SlowEntry struct {
	// Time is when the statement finished.
	Time time.Time
	// SQL is the normalized statement text, truncated to slowSQLCap
	// bytes (bulk multi-VALUES inserts can run to megabytes).
	SQL string
	// Dur is the statement's wall-clock time.
	Dur time.Duration
	// Outcome is ok, timeout, killed, budget, or error.
	Outcome string
	// Rows and Affected are the result sizes (query/DML).
	Rows, Affected int
	// Plan is the EXPLAIN ANALYZE rendering at capture time.
	Plan string
}

// slowRing is a fixed-capacity overwrite ring of slow statements.
type slowRing struct {
	mu   sync.Mutex
	buf  []SlowEntry
	next int
	full bool
}

func (r *slowRing) add(e SlowEntry) {
	r.mu.Lock()
	if r.buf == nil {
		r.buf = make([]SlowEntry, slowLogCap)
	}
	r.buf[r.next] = e
	if r.next++; r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// last returns up to n most recent entries, oldest first (n <= 0
// means everything retained).
func (r *slowRing) last(n int) []SlowEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SlowEntry
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// SetSlowQuery installs the engine-wide slow-query threshold; 0
// disables capture. Sessions can override per connection with
// WithSlowQuery. Safe for concurrent use.
func (e *Engine) SetSlowQuery(d time.Duration) {
	e.mu.Lock()
	e.slowThresh = d
	e.mu.Unlock()
}

// SlowQueryThreshold returns the engine-wide threshold (0 = off).
func (e *Engine) SlowQueryThreshold() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.slowThresh
}

// SlowLog returns up to n most recent slow-query captures, oldest
// first (n <= 0 returns everything the ring retains).
func (e *Engine) SlowLog(n int) []SlowEntry {
	return e.slowLog.last(n)
}

// recordSlow captures one slow statement and counts it. Statement
// text beyond slowSQLCap bytes is truncated with an ellipsis.
func (e *Engine) recordSlow(entry SlowEntry) {
	if len(entry.SQL) > slowSQLCap {
		cut := slowSQLCap
		for cut > 0 && !utf8.RuneStart(entry.SQL[cut]) {
			cut-- // never split a multi-byte rune in a string literal
		}
		entry.SQL = entry.SQL[:cut] + "…"
	}
	e.slowLog.add(entry)
	e.slowCtr.Inc()
}
