package dict

import (
	"repro/internal/types"
)

// FastPath labels which §4.1 merge optimization applied.
type FastPath uint8

const (
	// FastPathNone means the general two-way dictionary merge ran.
	FastPathNone FastPath = iota
	// FastPathSubset means every delta value already existed in the
	// main dictionary, so "the first phase of a dictionary generation
	// is skipped resulting in stable positions of the main entries".
	FastPathSubset
	// FastPathAppend means every delta value was greater than the main
	// maximum (e.g. increasing timestamps), so "the dictionary of the
	// L2-delta can be directly added to the main dictionary".
	FastPathAppend
)

func (f FastPath) String() string {
	switch f {
	case FastPathSubset:
		return "subset"
	case FastPathAppend:
		return "append"
	default:
		return "none"
	}
}

// MergeResult is the outcome of merging an unsorted delta dictionary
// into a sorted main dictionary: the new dictionary plus the position
// mapping tables of Fig. 7 that re-encode both value indexes.
type MergeResult struct {
	// Dict is the merged, sorted dictionary. On the subset fast path
	// it is the main dictionary itself (positions are stable).
	Dict *Sorted
	// MainStable reports that old main codes are valid in Dict
	// unchanged (subset and append fast paths).
	MainStable bool
	// MainMap maps old main codes to new codes; nil when MainStable.
	MainMap []uint32
	// DeltaMap maps delta codes to new codes.
	DeltaMap []uint32
	// Path records which fast path, if any, applied.
	Path FastPath
}

// Merge merges the delta dictionary into the main dictionary,
// discarding nothing (filtering of deleted records happens at the
// value-index level). main may be nil (first merge of a column).
func Merge(main *Sorted, delta *Unsorted) MergeResult {
	if main == nil || main.Len() == 0 {
		return firstMerge(delta)
	}
	d := delta.Len()
	res := MergeResult{DeltaMap: make([]uint32, d)}

	// Fast-path probe: look every distinct delta value up in the main
	// dictionary, tracking whether all hit (subset) or all exceed the
	// main maximum (append-only).
	maxMain, _ := main.Max()
	allFound, allAbove := true, true
	for c := 0; c < d; c++ {
		v := delta.At(uint32(c))
		if code, ok := main.Lookup(v); ok {
			res.DeltaMap[c] = code
			allAbove = false
		} else {
			allFound = false
			if types.Compare(v, maxMain) <= 0 {
				allAbove = false
			}
		}
		if !allFound && !allAbove {
			break
		}
	}

	switch {
	case d == 0 || allFound:
		res.Dict = main
		res.MainStable = true
		res.Path = FastPathSubset
		return res
	case allAbove:
		return appendMerge(main, delta)
	default:
		return generalMerge(main, delta)
	}
}

// firstMerge builds the initial sorted dictionary straight from the
// delta.
func firstMerge(delta *Unsorted) MergeResult {
	perm := delta.SortedPermutation()
	values := make([]types.Value, len(perm))
	deltaMap := make([]uint32, len(perm))
	for rank, code := range perm {
		values[rank] = delta.At(code)
		deltaMap[code] = uint32(rank)
	}
	return MergeResult{
		Dict:       NewSortedFromValues(delta.Kind(), values),
		MainStable: true, // vacuously: old main was empty
		DeltaMap:   deltaMap,
		Path:       FastPathNone,
	}
}

// appendMerge extends the main dictionary with the sorted delta
// values; main codes stay stable.
func appendMerge(main *Sorted, delta *Unsorted) MergeResult {
	m := main.Len()
	perm := delta.SortedPermutation()
	values := make([]types.Value, 0, m+len(perm))
	for c := 0; c < m; c++ {
		values = append(values, main.At(uint32(c)))
	}
	deltaMap := make([]uint32, len(perm))
	for rank, code := range perm {
		values = append(values, delta.At(code))
		deltaMap[code] = uint32(m + rank)
	}
	return MergeResult{
		Dict:       NewSortedFromValues(main.Kind(), values),
		MainStable: true,
		DeltaMap:   deltaMap,
		Path:       FastPathAppend,
	}
}

// generalMerge is the classic two-way merge of Fig. 7: walk the sorted
// main codes and the sorted permutation of the delta, emit each
// distinct value once, and record old→new position mappings for both
// sides.
func generalMerge(main *Sorted, delta *Unsorted) MergeResult {
	m, d := main.Len(), delta.Len()
	perm := delta.SortedPermutation()
	values := make([]types.Value, 0, m+d)
	mainMap := make([]uint32, m)
	deltaMap := make([]uint32, d)

	mi, di := 0, 0
	for mi < m || di < d {
		var take int // -1 main, +1 delta, 0 both (duplicate value)
		switch {
		case mi >= m:
			take = 1
		case di >= d:
			take = -1
		default:
			cmp := types.Compare(main.At(uint32(mi)), delta.At(perm[di]))
			switch {
			case cmp < 0:
				take = -1
			case cmp > 0:
				take = 1
			default:
				take = 0
			}
		}
		newCode := uint32(len(values))
		switch take {
		case -1:
			values = append(values, main.At(uint32(mi)))
			mainMap[mi] = newCode
			mi++
		case 1:
			values = append(values, delta.At(perm[di]))
			deltaMap[perm[di]] = newCode
			di++
		case 0:
			values = append(values, main.At(uint32(mi)))
			mainMap[mi] = newCode
			deltaMap[perm[di]] = newCode
			mi++
			di++
		}
	}
	return MergeResult{
		Dict:     NewSortedFromValues(main.Kind(), values),
		MainMap:  mainMap,
		DeltaMap: deltaMap,
		Path:     FastPathNone,
	}
}

// MergeSorted merges two sorted dictionaries (used by the full merge
// that collapses a passive/active main pair, §4.3). Both mapping
// tables are always produced.
func MergeSorted(a, b *Sorted) (merged *Sorted, aMap, bMap []uint32) {
	an, bn := a.Len(), b.Len()
	values := make([]types.Value, 0, an+bn)
	aMap = make([]uint32, an)
	bMap = make([]uint32, bn)
	ai, bi := 0, 0
	for ai < an || bi < bn {
		newCode := uint32(len(values))
		switch {
		case ai >= an:
			values = append(values, b.At(uint32(bi)))
			bMap[bi] = newCode
			bi++
		case bi >= bn:
			values = append(values, a.At(uint32(ai)))
			aMap[ai] = newCode
			ai++
		default:
			cmp := types.Compare(a.At(uint32(ai)), b.At(uint32(bi)))
			switch {
			case cmp < 0:
				values = append(values, a.At(uint32(ai)))
				aMap[ai] = newCode
				ai++
			case cmp > 0:
				values = append(values, b.At(uint32(bi)))
				bMap[bi] = newCode
				bi++
			default:
				values = append(values, a.At(uint32(ai)))
				aMap[ai] = newCode
				bMap[bi] = newCode
				ai++
				bi++
			}
		}
	}
	return NewSortedFromValues(a.Kind(), values), aMap, bMap
}
