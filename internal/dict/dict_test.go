package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestUnsortedGetOrAddAssignsArrivalOrder(t *testing.T) {
	u := NewUnsorted(types.KindString)
	cities := []string{"Los Gatos", "Daily City", "Los Gatos", "Campbell", "Daily City"}
	wantCodes := []uint32{0, 1, 0, 2, 1}
	for i, c := range cities {
		if got := u.GetOrAdd(types.Str(c)); got != wantCodes[i] {
			t.Errorf("GetOrAdd(%q) = %d, want %d", c, got, wantCodes[i])
		}
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d, want 3", u.Len())
	}
	if v := u.At(2); v.S != "Campbell" {
		t.Errorf("At(2) = %q", v.S)
	}
}

func TestUnsortedLookup(t *testing.T) {
	u := NewUnsorted(types.KindInt64)
	u.GetOrAdd(types.Int(10))
	u.GetOrAdd(types.Int(20))
	if c, ok := u.Lookup(types.Int(20)); !ok || c != 1 {
		t.Errorf("Lookup(20) = %d,%v", c, ok)
	}
	if _, ok := u.Lookup(types.Int(30)); ok {
		t.Error("Lookup(30) should miss")
	}
}

func TestUnsortedKinds(t *testing.T) {
	for _, k := range []types.Kind{types.KindInt64, types.KindFloat64, types.KindString, types.KindDate, types.KindBool} {
		u := NewUnsorted(k)
		var v types.Value
		switch k {
		case types.KindFloat64:
			v = types.Float(3.5)
		case types.KindString:
			v = types.Str("x")
		default:
			v = types.Value{Kind: k, I: 1}
		}
		c := u.GetOrAdd(v)
		if got := u.At(c); !types.Equal(got, v) {
			t.Errorf("%v: At(GetOrAdd(v)) = %v, want %v", k, got, v)
		}
		if u.MemSize() <= 0 {
			t.Errorf("%v: MemSize not positive", k)
		}
	}
}

func TestUnsortedRejectsNullAndWrongKind(t *testing.T) {
	u := NewUnsorted(types.KindInt64)
	for _, v := range []types.Value{types.Null, types.Str("x")} {
		func() {
			defer func() { recover() }()
			u.GetOrAdd(v)
			t.Errorf("GetOrAdd(%v) should panic", v)
		}()
	}
}

func TestSortedPermutation(t *testing.T) {
	u := NewUnsorted(types.KindString)
	for _, s := range []string{"pear", "apple", "zebra", "mango"} {
		u.GetOrAdd(types.Str(s))
	}
	perm := u.SortedPermutation()
	want := []string{"apple", "mango", "pear", "zebra"}
	for rank, code := range perm {
		if got := u.At(code).S; got != want[rank] {
			t.Errorf("rank %d = %q, want %q", rank, got, want[rank])
		}
	}
}

func TestUnsortedRangeCodes(t *testing.T) {
	u := NewUnsorted(types.KindInt64)
	for i := int64(0); i < 10; i++ {
		u.GetOrAdd(types.Int(i * 10))
	}
	codes := u.RangeCodes(types.Int(20), types.Int(50), true, true)
	if len(codes) != 4 {
		t.Fatalf("codes = %v", codes)
	}
	codes = u.RangeCodes(types.Int(20), types.Int(50), false, false)
	if len(codes) != 2 {
		t.Fatalf("exclusive codes = %v", codes)
	}
	codes = u.RangeCodes(types.Null, types.Int(15), true, true)
	if len(codes) != 2 { // 0, 10
		t.Fatalf("unbounded-lo codes = %v", codes)
	}
	codes = u.RangeCodes(types.Int(85), types.Null, true, true)
	if len(codes) != 1 { // 90
		t.Fatalf("unbounded-hi codes = %v", codes)
	}
}

func sortedFromStrings(ss ...string) *Sorted {
	vals := make([]types.Value, len(ss))
	for i, s := range ss {
		vals[i] = types.Str(s)
	}
	return NewSortedFromValues(types.KindString, vals)
}

func TestSortedBasics(t *testing.T) {
	s := sortedFromStrings("Berlin", "Palo Alto", "Seoul", "Walldorf")
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, want := range []string{"Berlin", "Palo Alto", "Seoul", "Walldorf"} {
		if got := s.At(uint32(i)).S; got != want {
			t.Errorf("At(%d) = %q, want %q", i, got, want)
		}
	}
	if c, ok := s.Lookup(types.Str("Seoul")); !ok || c != 2 {
		t.Errorf("Lookup(Seoul) = %d,%v", c, ok)
	}
	if _, ok := s.Lookup(types.Str("Paris")); ok {
		t.Error("Lookup(Paris) should miss")
	}
	if max, ok := s.Max(); !ok || max.S != "Walldorf" {
		t.Errorf("Max = %v,%v", max, ok)
	}
}

func TestSortedFrontCodingManyBlocks(t *testing.T) {
	// >16 strings with heavy shared prefixes to cross block borders.
	var ss []string
	for i := 0; i < 100; i++ {
		ss = append(ss, fmt.Sprintf("customer_record_%05d", i))
	}
	s := sortedFromStrings(ss...)
	for i, want := range ss {
		if got := s.At(uint32(i)).S; got != want {
			t.Fatalf("At(%d) = %q, want %q", i, got, want)
		}
		if c, ok := s.Lookup(types.Str(want)); !ok || c != uint32(i) {
			t.Fatalf("Lookup(%q) = %d,%v", want, c, ok)
		}
	}
	// Front coding must actually compress a shared-prefix dictionary.
	flat := 0
	for _, x := range ss {
		flat += len(x) + 16
	}
	if s.MemSize() >= flat {
		t.Errorf("front-coded size %d not smaller than flat %d", s.MemSize(), flat)
	}
}

func TestSortedRejectsUnsortedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted input should panic")
		}
	}()
	NewSortedFromValues(types.KindInt64, []types.Value{types.Int(2), types.Int(1)})
}

func TestSortedRangeCodes(t *testing.T) {
	vals := make([]types.Value, 0, 10)
	for i := int64(0); i < 10; i++ {
		vals = append(vals, types.Int(i*10))
	}
	s := NewSortedFromValues(types.KindInt64, vals)
	lo, hi, ok := s.RangeCodes(types.Int(20), types.Int(50), true, true)
	if !ok || lo != 2 || hi != 5 {
		t.Fatalf("range = %d..%d,%v", lo, hi, ok)
	}
	lo, hi, ok = s.RangeCodes(types.Int(25), types.Int(45), true, true)
	if !ok || lo != 3 || hi != 4 {
		t.Fatalf("between-values range = %d..%d,%v", lo, hi, ok)
	}
	if _, _, ok = s.RangeCodes(types.Int(41), types.Int(49), true, true); ok {
		t.Error("empty range should report !ok")
	}
	lo, hi, ok = s.RangeCodes(types.Null, types.Null, true, true)
	if !ok || lo != 0 || hi != 9 {
		t.Fatalf("unbounded range = %d..%d,%v", lo, hi, ok)
	}
	// exclusive bounds
	lo, hi, ok = s.RangeCodes(types.Int(20), types.Int(50), false, false)
	if !ok || lo != 3 || hi != 4 {
		t.Fatalf("exclusive range = %d..%d,%v", lo, hi, ok)
	}
}

func TestMergeGeneralPaperExample(t *testing.T) {
	// Fig. 7: main {Daily City, Los Gatos, San Jose} sorted; delta
	// arrival order {Los Gatos, Campbell, San Francisco}.
	main := sortedFromStrings("Daily City", "Los Gatos", "San Jose")
	delta := NewUnsorted(types.KindString)
	delta.GetOrAdd(types.Str("Los Gatos"))
	delta.GetOrAdd(types.Str("Campbell"))
	delta.GetOrAdd(types.Str("San Francisco"))

	res := Merge(main, delta)
	if res.Path != FastPathNone {
		t.Fatalf("path = %v", res.Path)
	}
	want := []string{"Campbell", "Daily City", "Los Gatos", "San Francisco", "San Jose"}
	if res.Dict.Len() != len(want) {
		t.Fatalf("merged dict = %s", res.Dict.DebugString())
	}
	for i, w := range want {
		if got := res.Dict.At(uint32(i)).S; got != w {
			t.Errorf("merged[%d] = %q, want %q", i, got, w)
		}
	}
	// Old main codes 0,1,2 -> 1,2,4 ; delta codes 0,1,2 -> 2,0,3.
	for i, w := range []uint32{1, 2, 4} {
		if res.MainMap[i] != w {
			t.Errorf("MainMap[%d] = %d, want %d", i, res.MainMap[i], w)
		}
	}
	for i, w := range []uint32{2, 0, 3} {
		if res.DeltaMap[i] != w {
			t.Errorf("DeltaMap[%d] = %d, want %d", i, res.DeltaMap[i], w)
		}
	}
}

func TestMergeSubsetFastPath(t *testing.T) {
	main := sortedFromStrings("a", "b", "c")
	delta := NewUnsorted(types.KindString)
	delta.GetOrAdd(types.Str("c"))
	delta.GetOrAdd(types.Str("a"))
	res := Merge(main, delta)
	if res.Path != FastPathSubset || !res.MainStable {
		t.Fatalf("path = %v stable=%v", res.Path, res.MainStable)
	}
	if res.Dict != main {
		t.Error("subset path should reuse the main dictionary")
	}
	if res.DeltaMap[0] != 2 || res.DeltaMap[1] != 0 {
		t.Errorf("DeltaMap = %v", res.DeltaMap)
	}
}

func TestMergeAppendFastPath(t *testing.T) {
	// Increasing timestamps scenario.
	vals := []types.Value{types.Int(100), types.Int(200)}
	main := NewSortedFromValues(types.KindInt64, vals)
	delta := NewUnsorted(types.KindInt64)
	delta.GetOrAdd(types.Int(400))
	delta.GetOrAdd(types.Int(300))
	res := Merge(main, delta)
	if res.Path != FastPathAppend || !res.MainStable {
		t.Fatalf("path = %v stable=%v", res.Path, res.MainStable)
	}
	if res.Dict.Len() != 4 {
		t.Fatalf("dict = %s", res.Dict.DebugString())
	}
	if res.DeltaMap[0] != 3 || res.DeltaMap[1] != 2 {
		t.Errorf("DeltaMap = %v", res.DeltaMap)
	}
	// Old main codes still resolve to the same values.
	if res.Dict.At(0).I != 100 || res.Dict.At(1).I != 200 {
		t.Error("main codes not stable")
	}
}

func TestMergeEmptyMain(t *testing.T) {
	delta := NewUnsorted(types.KindInt64)
	delta.GetOrAdd(types.Int(5))
	delta.GetOrAdd(types.Int(1))
	res := Merge(nil, delta)
	if res.Dict.Len() != 2 || res.Dict.At(0).I != 1 {
		t.Fatalf("dict = %s", res.Dict.DebugString())
	}
	if res.DeltaMap[0] != 1 || res.DeltaMap[1] != 0 {
		t.Errorf("DeltaMap = %v", res.DeltaMap)
	}
}

func TestMergeEmptyDelta(t *testing.T) {
	main := sortedFromStrings("a")
	res := Merge(main, NewUnsorted(types.KindString))
	if res.Path != FastPathSubset || res.Dict != main {
		t.Fatalf("empty delta: path=%v", res.Path)
	}
}

// TestMergeQuick checks, for random inputs, that the merged dictionary
// is sorted and that both mapping tables point at the right values.
func TestMergeQuick(t *testing.T) {
	f := func(mainSeed, deltaSeed int64) bool {
		rm := rand.New(rand.NewSource(mainSeed))
		rd := rand.New(rand.NewSource(deltaSeed))
		uniq := map[int64]bool{}
		for i := 0; i < rm.Intn(50); i++ {
			uniq[rm.Int63n(100)] = true
		}
		var sortedVals []int64
		for v := range uniq {
			sortedVals = append(sortedVals, v)
		}
		sort.Slice(sortedVals, func(a, b int) bool { return sortedVals[a] < sortedVals[b] })
		var main *Sorted
		if len(sortedVals) > 0 {
			vals := make([]types.Value, len(sortedVals))
			for i, v := range sortedVals {
				vals[i] = types.Int(v)
			}
			main = NewSortedFromValues(types.KindInt64, vals)
		}
		delta := NewUnsorted(types.KindInt64)
		for i := 0; i < rd.Intn(50); i++ {
			delta.GetOrAdd(types.Int(rd.Int63n(100)))
		}
		res := Merge(main, delta)
		// Sorted and strictly ascending.
		for i := 1; i < res.Dict.Len(); i++ {
			if types.Compare(res.Dict.At(uint32(i-1)), res.Dict.At(uint32(i))) >= 0 {
				return false
			}
		}
		// Delta mapping correctness.
		for c := 0; c < delta.Len(); c++ {
			if !types.Equal(res.Dict.At(res.DeltaMap[c]), delta.At(uint32(c))) {
				return false
			}
		}
		// Main mapping correctness.
		if main != nil {
			for c := 0; c < main.Len(); c++ {
				newCode := uint32(c)
				if !res.MainStable {
					newCode = res.MainMap[c]
				}
				if !types.Equal(res.Dict.At(newCode), main.At(uint32(c))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSorted(t *testing.T) {
	a := sortedFromStrings("b", "d", "f")
	b := sortedFromStrings("a", "d", "z")
	m, aMap, bMap := MergeSorted(a, b)
	want := []string{"a", "b", "d", "f", "z"}
	for i, w := range want {
		if m.At(uint32(i)).S != w {
			t.Fatalf("merged = %s", m.DebugString())
		}
	}
	for i := 0; i < a.Len(); i++ {
		if !types.Equal(m.At(aMap[i]), a.At(uint32(i))) {
			t.Errorf("aMap[%d] wrong", i)
		}
	}
	for i := 0; i < b.Len(); i++ {
		if !types.Equal(m.At(bMap[i]), b.At(uint32(i))) {
			t.Errorf("bMap[%d] wrong", i)
		}
	}
}

func TestLowerBound(t *testing.T) {
	s := NewSortedFromValues(types.KindInt64,
		[]types.Value{types.Int(10), types.Int(20), types.Int(30)})
	cases := []struct {
		v    int64
		inc  bool
		want uint32
	}{
		{5, true, 0}, {10, true, 0}, {10, false, 1},
		{15, true, 1}, {30, true, 2}, {30, false, 3}, {35, true, 3},
	}
	for _, c := range cases {
		if got := s.LowerBound(types.Int(c.v), c.inc); got != c.want {
			t.Errorf("LowerBound(%d,%v) = %d, want %d", c.v, c.inc, got, c.want)
		}
	}
}
