package dict

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// frontBlock is the front-coding (prefix-compression) block size for
// string dictionaries: the first string of each block is stored in
// full, the remainder as (shared-prefix length, suffix) pairs — the
// paper's "dictionary is always compressed using a variety of
// prefix-coding schemes" (§3).
const frontBlock = 16

// Sorted is the main-store dictionary: values in strictly ascending
// order so that code comparison equals value comparison, enabling
// operators to work directly on dictionary-encoded columns (§4.1,
// "the sort order … is the base for special operators working
// directly on dictionary encoded columns").
type Sorted struct {
	kind types.Kind

	ints   []int64
	floats []float64

	// Front-coded string storage.
	heads    []string // first string of each block, stored in full
	prefixes []uint16 // shared-prefix length with block head
	suffixes []string // remainder after the shared prefix
	n        int      // total entries (strings only)
}

// NewSortedFromValues builds a sorted dictionary from values that are
// already in strictly ascending order (no duplicates). It panics on
// unsorted input: callers are the merge paths, which construct sorted
// runs by design.
func NewSortedFromValues(kind types.Kind, values []types.Value) *Sorted {
	s := &Sorted{kind: kind}
	var prev types.Value
	for i, v := range values {
		if v.IsNull() || v.Kind != kind {
			panic(fmt.Sprintf("dict: bad value %v for sorted %v dictionary", v, kind))
		}
		if i > 0 && types.Compare(prev, v) >= 0 {
			panic("dict: NewSortedFromValues input not strictly ascending")
		}
		prev = v
		s.append(v)
	}
	return s
}

func (s *Sorted) append(v types.Value) {
	switch s.kind {
	case types.KindString:
		if s.n%frontBlock == 0 {
			s.heads = append(s.heads, v.S)
			s.prefixes = append(s.prefixes, 0)
			s.suffixes = append(s.suffixes, "")
		} else {
			head := s.heads[len(s.heads)-1]
			p := sharedPrefix(head, v.S)
			s.prefixes = append(s.prefixes, uint16(p))
			s.suffixes = append(s.suffixes, v.S[p:])
		}
		s.n++
	case types.KindFloat64:
		s.floats = append(s.floats, v.F)
	default:
		s.ints = append(s.ints, v.I)
	}
}

func sharedPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n > 65535 {
		n = 65535
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Kind returns the column kind.
func (s *Sorted) Kind() types.Kind { return s.kind }

// Len returns the number of distinct values.
func (s *Sorted) Len() int {
	switch s.kind {
	case types.KindString:
		return s.n
	case types.KindFloat64:
		return len(s.floats)
	default:
		return len(s.ints)
	}
}

// At returns the value at code c, reconstructing front-coded strings.
func (s *Sorted) At(c uint32) types.Value {
	switch s.kind {
	case types.KindString:
		i := int(c)
		if i%frontBlock == 0 {
			return types.Str(s.heads[i/frontBlock])
		}
		head := s.heads[i/frontBlock]
		return types.Str(head[:s.prefixes[i]] + s.suffixes[i])
	case types.KindFloat64:
		return types.Float(s.floats[c])
	default:
		return types.Value{Kind: s.kind, I: s.ints[c]}
	}
}

// atString is At for string dictionaries without the Value wrapper.
func (s *Sorted) atString(i int) string {
	if i%frontBlock == 0 {
		return s.heads[i/frontBlock]
	}
	head := s.heads[i/frontBlock]
	p := int(s.prefixes[i])
	if s.suffixes[i] == "" {
		return head[:p]
	}
	return head[:p] + s.suffixes[i]
}

// Lookup returns the code of v and whether it is present, by binary
// search — "a point access is resolved within the … dictionary"
// (§4.3).
func (s *Sorted) Lookup(v types.Value) (uint32, bool) {
	if v.IsNull() || v.Kind != s.kind {
		return 0, false
	}
	switch s.kind {
	case types.KindString:
		i := sort.Search(s.n, func(i int) bool { return s.atString(i) >= v.S })
		if i < s.n && s.atString(i) == v.S {
			return uint32(i), true
		}
	case types.KindFloat64:
		i := sort.SearchFloat64s(s.floats, v.F)
		if i < len(s.floats) && s.floats[i] == v.F {
			return uint32(i), true
		}
	default:
		i := sort.Search(len(s.ints), func(i int) bool { return s.ints[i] >= v.I })
		if i < len(s.ints) && s.ints[i] == v.I {
			return uint32(i), true
		}
	}
	return 0, false
}

// LowerBound returns the smallest code whose value is >= v (or == v
// when inclusive is false, the smallest code strictly greater).
func (s *Sorted) LowerBound(v types.Value, inclusive bool) uint32 {
	n := s.Len()
	i := sort.Search(n, func(i int) bool {
		cmp := types.Compare(s.At(uint32(i)), v)
		if inclusive {
			return cmp >= 0
		}
		return cmp > 0
	})
	return uint32(i)
}

// RangeCodes resolves a value range [lo, hi] (NULL bound = unbounded)
// to the corresponding contiguous code range [loCode, hiCode]. ok is
// false when the range is empty. Because the dictionary is sorted,
// range predicates on the main store reduce to one code-range scan
// (§4.3, Fig. 10).
func (s *Sorted) RangeCodes(lo, hi types.Value, loInc, hiInc bool) (loCode, hiCode uint32, ok bool) {
	n := s.Len()
	if n == 0 {
		return 0, 0, false
	}
	var l uint32
	if !lo.IsNull() {
		l = s.LowerBound(lo, loInc)
	}
	h := uint32(n) // exclusive
	if !hi.IsNull() {
		h = s.LowerBound(hi, !hiInc)
	}
	if l >= h {
		return 0, 0, false
	}
	return l, h - 1, true
}

// Max returns the largest value in the dictionary; ok is false when empty.
func (s *Sorted) Max() (types.Value, bool) {
	n := s.Len()
	if n == 0 {
		return types.Null, false
	}
	return s.At(uint32(n - 1)), true
}

// MemSize approximates the heap footprint in bytes — with front
// coding this is the compressed size the main store reports (Fig. 11).
func (s *Sorted) MemSize() int {
	switch s.kind {
	case types.KindString:
		b := 48
		for _, h := range s.heads {
			b += len(h) + 16
		}
		for _, sf := range s.suffixes {
			b += len(sf) + 16
		}
		b += len(s.prefixes) * 2
		return b
	case types.KindFloat64:
		return len(s.floats)*8 + 48
	default:
		return len(s.ints)*8 + 48
	}
}

// NumericSlices exposes the backing arrays of numeric dictionaries
// (ints covers INT64/DATE/BOOLEAN); both are nil for string
// dictionaries. Vectorized aggregation kernels index them directly by
// code instead of boxing values (§4.1, [15]).
func (s *Sorted) NumericSlices() (ints []int64, floats []float64) {
	return s.ints, s.floats
}

// DebugString lists the dictionary contents (tests and CLI only).
func (s *Sorted) DebugString() string {
	var b strings.Builder
	for i := 0; i < s.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.At(uint32(i)).String())
	}
	return b.String()
}
