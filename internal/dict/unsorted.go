// Package dict implements the per-column dictionaries of the unified
// table: the append-only, unsorted dictionary of the L2-delta with
// its secondary hash index (paper §3, "the dictionary is unsorted
// requiring secondary index structures to optimally support point
// query access patterns"), and the sorted, prefix-coded dictionary of
// the main store (§3, §4.1). It also implements the dictionary merge
// that drives the L2-delta-to-main merge, including the subset and
// append-only fast paths the paper describes.
//
// Dictionaries never store SQL NULL; column stores track NULLs in a
// separate bitmap and reserve code 0 in the value vector for them.
package dict

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// Unsorted is the L2-delta dictionary: values are assigned codes in
// arrival order and are never reorganized ("inserts new entries at
// the end of the dictionary to avoid any major restructuring"). A
// hash index supports O(1) value→code lookups for unique-constraint
// checks and point queries.
type Unsorted struct {
	kind types.Kind

	ints   []int64
	floats []float64
	strs   []string

	intIdx   map[int64]uint32
	floatIdx map[float64]uint32
	strIdx   map[string]uint32
}

// NewUnsorted returns an empty unsorted dictionary for a column kind.
func NewUnsorted(kind types.Kind) *Unsorted {
	u := &Unsorted{kind: kind}
	switch kind {
	case types.KindString:
		u.strIdx = make(map[string]uint32)
	case types.KindFloat64:
		u.floatIdx = make(map[float64]uint32)
	case types.KindInt64, types.KindDate, types.KindBool:
		u.intIdx = make(map[int64]uint32)
	default:
		panic(fmt.Sprintf("dict: invalid kind %v", kind))
	}
	return u
}

// Kind returns the column kind the dictionary encodes.
func (u *Unsorted) Kind() types.Kind { return u.kind }

// Len returns the number of distinct values.
func (u *Unsorted) Len() int {
	switch u.kind {
	case types.KindString:
		return len(u.strs)
	case types.KindFloat64:
		return len(u.floats)
	default:
		return len(u.ints)
	}
}

// GetOrAdd returns the code for v, adding it at the end of the
// dictionary if absent. v must be non-NULL and of the dictionary's
// kind.
func (u *Unsorted) GetOrAdd(v types.Value) uint32 {
	u.checkValue(v)
	switch u.kind {
	case types.KindString:
		if c, ok := u.strIdx[v.S]; ok {
			return c
		}
		c := uint32(len(u.strs))
		u.strs = append(u.strs, v.S)
		u.strIdx[v.S] = c
		return c
	case types.KindFloat64:
		if c, ok := u.floatIdx[v.F]; ok {
			return c
		}
		c := uint32(len(u.floats))
		u.floats = append(u.floats, v.F)
		u.floatIdx[v.F] = c
		return c
	default:
		if c, ok := u.intIdx[v.I]; ok {
			return c
		}
		c := uint32(len(u.ints))
		u.ints = append(u.ints, v.I)
		u.intIdx[v.I] = c
		return c
	}
}

// Lookup returns the code for v and whether it is present.
func (u *Unsorted) Lookup(v types.Value) (uint32, bool) {
	u.checkValue(v)
	switch u.kind {
	case types.KindString:
		c, ok := u.strIdx[v.S]
		return c, ok
	case types.KindFloat64:
		c, ok := u.floatIdx[v.F]
		return c, ok
	default:
		c, ok := u.intIdx[v.I]
		return c, ok
	}
}

// At returns the value stored at code c.
func (u *Unsorted) At(c uint32) types.Value {
	switch u.kind {
	case types.KindString:
		return types.Str(u.strs[c])
	case types.KindFloat64:
		return types.Float(u.floats[c])
	default:
		return types.Value{Kind: u.kind, I: u.ints[c]}
	}
}

// MemSize approximates the heap footprint in bytes, including the
// hash index (the memory-for-speed trade the L2-delta makes, Fig. 11).
func (u *Unsorted) MemSize() int {
	switch u.kind {
	case types.KindString:
		n := 0
		for _, s := range u.strs {
			n += len(s) + 16
		}
		return n*2 + 48 // strings + index entries
	case types.KindFloat64:
		return len(u.floats)*8*2 + 48
	default:
		return len(u.ints)*8*2 + 48
	}
}

// NumericSlices exposes the backing arrays of numeric dictionaries
// (ints covers INT64/DATE/BOOLEAN); both are nil for string
// dictionaries.
func (u *Unsorted) NumericSlices() (ints []int64, floats []float64) {
	return u.ints, u.floats
}

// SortedPermutation returns the dictionary's codes ordered by value:
// perm[rank] = code. The L1→L2 and L2→main merges, the global sorted
// dictionary iterator, and range predicates on the L2-delta all sort
// the unsorted dictionary on the fly (§3.1).
func (u *Unsorted) SortedPermutation() []uint32 {
	n := u.Len()
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	switch u.kind {
	case types.KindString:
		sort.Slice(perm, func(a, b int) bool { return u.strs[perm[a]] < u.strs[perm[b]] })
	case types.KindFloat64:
		sort.Slice(perm, func(a, b int) bool { return u.floats[perm[a]] < u.floats[perm[b]] })
	default:
		sort.Slice(perm, func(a, b int) bool { return u.ints[perm[a]] < u.ints[perm[b]] })
	}
	return perm
}

// RangeCodes returns the set of codes whose values fall in [lo, hi]
// (inclusive bounds; a NULL bound means unbounded on that side).
// Because the dictionary is unsorted this is a full dictionary scan —
// the price the L2-delta pays for cheap inserts.
func (u *Unsorted) RangeCodes(lo, hi types.Value, loInc, hiInc bool) []uint32 {
	var out []uint32
	n := u.Len()
	for c := 0; c < n; c++ {
		v := u.At(uint32(c))
		if !lo.IsNull() {
			cmp := types.Compare(v, lo)
			if cmp < 0 || (cmp == 0 && !loInc) {
				continue
			}
		}
		if !hi.IsNull() {
			cmp := types.Compare(v, hi)
			if cmp > 0 || (cmp == 0 && !hiInc) {
				continue
			}
		}
		out = append(out, uint32(c))
	}
	return out
}

func (u *Unsorted) checkValue(v types.Value) {
	if v.IsNull() {
		panic("dict: NULL has no dictionary code")
	}
	want := u.kind
	if v.Kind != want {
		panic(fmt.Sprintf("dict: value kind %v, dictionary kind %v", v.Kind, want))
	}
}
