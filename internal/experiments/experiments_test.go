package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunAtTinyScale executes every experiment at a
// small scale, checking each produces a populated report and hits no
// internal consistency failure (several experiments verify invariants
// and return errors when the mechanism misbehaves).
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	cfg := Config{Scale: 0.02, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q, want %q", rep.ID, e.ID)
			}
			if len(rep.Rows) == 0 {
				t.Error("empty report")
			}
			out := rep.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, "paper claim") {
				t.Errorf("malformed report:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E05"); !ok {
		t.Error("E05 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}
