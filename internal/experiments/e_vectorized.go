package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
	"repro/internal/workload"
)

// E13Vectorized measures the vectorized read path (ISSUE 3's "E04"
// experiment; E04 was already taken by the re-sorting merge): a
// full-table scan-aggregate over the main store through the row-at-a-
// time pipeline (materializing TableScan + HashAggregate) versus the
// batch pipeline (streaming BatchTableScan + BatchHashAggregate),
// plus the batch-size sensitivity and the effect of code-level
// predicate pushdown.
func E13Vectorized(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(1_000_000)
	rep := &benchfmt.Report{
		ID: "E13", Title: "Vectorized batch read path (§3.1)",
		Claim:  "block-wise decoding into typed vectors beats row-at-a-time materialization on scan-heavy queries",
		Header: []string{"pipeline", "rows", "scan-aggregate", "speedup"},
	}

	db, err := memDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	t, err := orderTable(db, "orders", core.TableConfig{L2MaxRows: 2 * n})
	if err != nil {
		return nil, err
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	if err := bulkLoad(db, t, gen.Rows(n)); err != nil {
		return nil, err
	}
	if err := drainToMain(t); err != nil {
		return nil, err
	}

	// Group by region (low cardinality), sum quantity and amount —
	// the canonical OLAP scan-aggregate shape of §3.1.
	groupBy := []int{3}
	aggs := []engine.Agg{
		{Func: engine.AggCount},
		{Func: engine.AggSum, Col: 5},
		{Func: engine.AggSum, Col: 6},
	}
	var rowGroups, batchGroups int
	runtime.GC()
	rowD, err := medianOf(3, func() error {
		rows, err := engine.Collect(&engine.HashAggregate{
			In: &engine.TableScan{Table: t}, GroupBy: groupBy, Aggs: aggs,
		})
		rowGroups = len(rows)
		return err
	})
	if err != nil {
		return nil, err
	}
	runtime.GC()
	batchD, err := medianOf(3, func() error {
		rows, err := engine.CollectBatches(&engine.BatchHashAggregate{
			In: &engine.BatchTableScan{Table: t}, GroupBy: groupBy, Aggs: aggs,
		})
		batchGroups = len(rows)
		return err
	})
	if err != nil {
		return nil, err
	}
	if rowGroups != batchGroups {
		return nil, fmt.Errorf("E13: pipelines disagree: %d vs %d groups", rowGroups, batchGroups)
	}
	rep.AddRow("row-at-a-time (TableScan+HashAggregate)", fmtInt(n), benchfmt.Dur(rowD), "1.0x")
	rep.AddRow("vectorized (BatchTableScan+BatchHashAggregate)", fmtInt(n), benchfmt.Dur(batchD),
		benchfmt.Factor(rowD.Seconds(), batchD.Seconds()))

	// Batch-size sensitivity: tiny batches pay per-batch overhead,
	// huge ones fall out of cache; the default sits on the plateau.
	for _, size := range []int{64, vec.DefaultBatchSize, 16384} {
		runtime.GC()
		d, err := medianOf(3, func() error {
			_, err := engine.CollectBatches(&engine.BatchHashAggregate{
				In: &engine.BatchTableScan{Table: t, BatchSize: size}, GroupBy: groupBy, Aggs: aggs,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("vectorized, batch=%d", size), fmtInt(n), benchfmt.Dur(d),
			benchfmt.Factor(rowD.Seconds(), d.Seconds()))
	}

	// Selective scan: the pushed-down range is evaluated on dictionary
	// codes inside each stage, so the batch path never materializes
	// the filtered-out rows.
	pred := expr.Between{Col: 6, Lo: types.Float(1), Hi: types.Float(50), LoInc: true, HiInc: true}
	runtime.GC()
	rowSelD, err := medianOf(3, func() error {
		_, err := engine.Collect(&engine.HashAggregate{
			In: &engine.TableScan{Table: t, Pred: pred}, GroupBy: groupBy, Aggs: aggs,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	runtime.GC()
	batchSelD, err := medianOf(3, func() error {
		_, err := engine.CollectBatches(&engine.BatchHashAggregate{
			In: &engine.BatchTableScan{Table: t, Pred: pred}, GroupBy: groupBy, Aggs: aggs,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.AddRow("row-at-a-time, range predicate", fmtInt(n), benchfmt.Dur(rowSelD), "1.0x")
	rep.AddRow("vectorized, range predicate", fmtInt(n), benchfmt.Dur(batchSelD),
		benchfmt.Factor(rowSelD.Seconds(), batchSelD.Seconds()))

	rep.AddNote("full-scan speedup %s (acceptance floor 2x); both pipelines returned %d groups",
		benchfmt.Factor(rowD.Seconds(), batchD.Seconds()), rowGroups)
	return rep, nil
}
