package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/calc"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mvcc"
	"repro/internal/rowstore"
	"repro/internal/types"
	"repro/internal/workload"
)

// E08Myth is the headline experiment: the unified column table
// sustains OLTP within a small factor of a classic update-in-place
// row store while dominating it on analytical scans — "ending the
// myth to use columnar technique only for OLAP-style workloads" (§5).
func E08Myth(cfg Config) (*benchfmt.Report, error) {
	preload := cfg.n(100_000)
	opsN := cfg.n(30_000)
	rep := &benchfmt.Report{
		ID: "E08", Title: "End of the column store myth (§1/§5)",
		Claim:  "the unified table is OLTP-competitive with a row store and far faster on OLAP aggregates",
		Header: []string{"engine", "OLTP ops/s", "point q (1k)", "OLAP aggregate", "heap bytes/row"},
	}

	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	preRows := gen.Rows(preload)
	ops := gen.Ops(opsN, workload.DefaultMix, int64(preload))
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- unified column table ---
	db, err := core.OpenDatabase(core.DBOptions{AutoMerge: true})
	if err != nil {
		return nil, err
	}
	ut, err := orderTable(db, "orders", core.TableConfig{
		CheckUnique: true, L1MaxRows: 10_000, L2MaxRows: 200_000, Strategy: core.MergeClassic,
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	if err := bulkLoad(db, ut, preRows); err != nil {
		db.Close()
		return nil, err
	}
	if err := drainToMain(ut); err != nil {
		db.Close()
		return nil, err
	}
	oltpD, err := timeIt(func() error {
		for _, op := range ops {
			tx := db.Begin(mvcc.TxnSnapshot)
			var err error
			switch op.Kind {
			case workload.OpInsert:
				_, err = ut.Insert(tx, op.Row)
			case workload.OpUpdate:
				_, err = ut.UpdateKey(tx, types.Int(op.Key), op.Row)
			case workload.OpDelete:
				_, err = ut.DeleteKey(tx, types.Int(op.Key))
			case workload.OpPoint:
				v := ut.View(tx)
				v.Get(types.Int(op.Key))
				v.Close()
			}
			if err != nil && !errors.Is(err, mvcc.ErrWriteConflict) {
				// Updates/deletes may miss rows already deleted by the
				// stream; treat not-found updates as no-ops.
				if op.Kind != workload.OpUpdate {
					tx.Abort()
					return err
				}
			}
			if err != nil {
				db.Abort(tx)
				continue
			}
			if err := db.Commit(tx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	pointD, err := medianOf(3, func() error {
		v := ut.View(nil)
		defer v.Close()
		for i := 0; i < 1000; i++ {
			v.Get(types.Int(1 + rng.Int63n(int64(preload))))
		}
		return nil
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	// Let the asynchronous propagation catch up before the analytical
	// phase (the paper's scenario: merges run in the background, OLAP
	// hits the read-optimized main).
	if err := drainToMain(ut); err != nil {
		db.Close()
		return nil, err
	}
	olapUnified, err := medianOf(5, func() error {
		g := calc.NewGraph()
		agg := g.Aggregate(g.Table(ut), []int{3},
			engine.Agg{Func: engine.AggCount}, engine.Agg{Func: engine.AggSum, Col: 6})
		_, err := calc.Execute(g, agg, calc.Env{})
		return err
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	st := ut.Stats()
	utBytes := st.L1Bytes + st.L2Bytes + st.MainBytes
	utRows := st.L1Rows + st.L2Rows + st.FrozenL2Rows + st.MainRows
	rep.AddRow("unified column table", benchfmt.Rate(opsN, oltpD), benchfmt.Dur(pointD),
		benchfmt.Dur(olapUnified), benchfmt.PerRow(utBytes, utRows))
	db.Close()

	// --- classic row store ---
	rs, err := rowstore.New(workload.OrderSchema(), nil)
	if err != nil {
		return nil, err
	}
	for _, r := range preRows {
		if _, err := rs.Insert(r); err != nil {
			return nil, err
		}
	}
	rsOltpD, err := timeIt(func() error {
		for _, op := range ops {
			switch op.Kind {
			case workload.OpInsert:
				if _, err := rs.Insert(op.Row); err != nil {
					return err
				}
			case workload.OpUpdate:
				if err := rs.Update(types.Int(op.Key), op.Row); err != nil && !errors.Is(err, rowstore.ErrNotFound) {
					return err
				}
			case workload.OpDelete:
				if err := rs.Delete(types.Int(op.Key)); err != nil && !errors.Is(err, rowstore.ErrNotFound) {
					return err
				}
			case workload.OpPoint:
				rs.Get(types.Int(op.Key))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rsPointD, err := medianOf(3, func() error {
		for i := 0; i < 1000; i++ {
			rs.Get(types.Int(1 + rng.Int63n(int64(preload))))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	olapRow, err := medianOf(5, func() error {
		// The symmetric fused scan-aggregate: no materialization
		// overhead on either side; the row store still reads full
		// records where the column table touches two columns.
		agg := &engine.RowStoreAggregate{
			Store:   rs,
			GroupBy: []int{3},
			Aggs:    []engine.Agg{{Func: engine.AggCount}, {Func: engine.AggSum, Col: 6}},
		}
		_, err := engine.Collect(agg)
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.AddRow("update-in-place row store", benchfmt.Rate(opsN, rsOltpD), benchfmt.Dur(rsPointD),
		benchfmt.Dur(olapRow), benchfmt.PerRow(rs.MemSize(), rs.Len()))

	rep.AddNote("OLTP slowdown of the column table: %s; OLAP speed-up: %s",
		benchfmt.Factor(oltpD.Seconds(), rsOltpD.Seconds()),
		benchfmt.Factor(olapRow.Seconds(), olapUnified.Seconds()))
	return rep, nil
}

// E09MVCC measures the two snapshot isolation levels (§1) and
// write-write conflict detection.
func E09MVCC(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(20_000)
	rep := &benchfmt.Report{
		ID: "E09", Title: "MVCC isolation levels (§1)",
		Claim:  "transaction- and statement-level snapshot isolation coexist; writers never block snapshot readers; conflicting writers abort instead of waiting",
		Header: []string{"metric", "value"},
	}
	db, err := memDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	t, err := orderTable(db, "orders", core.TableConfig{CheckUnique: true})
	if err != nil {
		return nil, err
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	if err := bulkLoad(db, t, gen.Rows(n)); err != nil {
		return nil, err
	}

	// Mixed statements under each isolation level (median of 3 runs).
	for _, level := range []mvcc.IsolationLevel{mvcc.TxnSnapshot, mvcc.StmtSnapshot} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		d, err := medianOf(3, func() error {
			tx := db.Begin(level)
			defer db.Commit(tx)
			for i := 0; i < 5000; i++ {
				v := t.View(tx)
				v.Get(types.Int(1 + rng.Int63n(int64(n))))
				v.Close()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("5k point statements (%v)", level), benchfmt.Dur(d))
	}

	// Snapshot stability: a transaction-level reader is immune to a
	// concurrent committed write; a statement-level reader sees it.
	txReader := db.Begin(mvcc.TxnSnapshot)
	stReader := db.Begin(mvcc.StmtSnapshot)
	wtx := db.Begin(mvcc.TxnSnapshot)
	extra := gen.Rows(1)[0]
	if _, err := t.Insert(wtx, extra); err != nil {
		return nil, err
	}
	db.Commit(wtx)
	vt := t.View(txReader)
	txSaw := vt.Get(extra[0]) != nil
	vt.Close()
	vs := t.View(stReader)
	stSaw := vs.Get(extra[0]) != nil
	vs.Close()
	db.Commit(txReader)
	db.Commit(stReader)
	rep.AddRow("txn-level reader sees concurrent commit", fmt.Sprintf("%v (want false)", txSaw))
	rep.AddRow("stmt-level reader sees concurrent commit", fmt.Sprintf("%v (want true)", stSaw))

	// Write-write conflicts on hot keys.
	conflicts, attempts := 0, 500
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < attempts; i++ {
		key := types.Int(1 + rng.Int63n(50)) // hot range
		a := db.Begin(mvcc.TxnSnapshot)
		b := db.Begin(mvcc.TxnSnapshot)
		_, errA := t.DeleteKey(a, key)
		_, errB := t.DeleteKey(b, key)
		if errors.Is(errB, mvcc.ErrWriteConflict) || errors.Is(errA, mvcc.ErrWriteConflict) {
			conflicts++
		}
		db.Abort(a)
		db.Abort(b)
	}
	rep.AddRow("hot-key write-write conflicts detected", fmt.Sprintf("%d/%d", conflicts, attempts))
	if txSaw || !stSaw {
		return nil, fmt.Errorf("E09: isolation semantics violated")
	}
	return rep, nil
}

// E10Persistence measures write-once redo logging, savepoints, and
// recovery (Fig. 5).
func E10Persistence(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(30_000)
	rep := &benchfmt.Report{
		ID: "E10", Title: "Logging, savepoints, recovery (Fig. 5)",
		Claim:  "redo is logged once per record; savepoints bound the log and the recovery time",
		Header: []string{"configuration", "insert rate", "log size", "savepoint", "recovery"},
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	rows := gen.Rows(n)

	// In-memory baseline.
	{
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, _ := orderTable(db, "orders", core.TableConfig{L1MaxRows: n + 1})
		d, err := timeIt(func() error { return insertRows(db, t, rows) })
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.AddRow("no WAL (in-memory)", benchfmt.Rate(n, d), "-", "-", "-")
		db.Close()
	}

	// WAL without savepoint: recovery replays the whole log.
	runPersist := func(label string, savepointEvery int) error {
		dir, err := os.MkdirTemp("", "hana-e10")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := core.OpenDatabase(core.DBOptions{Dir: dir})
		if err != nil {
			return err
		}
		t, err := orderTable(db, "orders", core.TableConfig{L1MaxRows: n + 1})
		if err != nil {
			db.Close()
			return err
		}
		var spTotal time.Duration
		insD, err := timeIt(func() error {
			for i, r := range rows {
				tx := db.Begin(mvcc.TxnSnapshot)
				if _, err := t.Insert(tx, r); err != nil {
					return err
				}
				if err := db.Commit(tx); err != nil {
					return err
				}
				if savepointEvery > 0 && (i+1)%savepointEvery == 0 {
					d, err := timeIt(db.Savepoint)
					if err != nil {
						return err
					}
					spTotal += d
				}
			}
			return nil
		})
		if err != nil {
			db.Close()
			return err
		}
		var logSize int64
		if fi, err := os.Stat(filepath.Join(dir, "wal")); err == nil && fi.IsDir() {
			entries, _ := os.ReadDir(filepath.Join(dir, "wal"))
			for _, e := range entries {
				if info, err := e.Info(); err == nil {
					logSize += info.Size()
				}
			}
		}
		db.Close()
		recD, err := timeIt(func() error {
			db2, err := core.OpenDatabase(core.DBOptions{Dir: dir})
			if err != nil {
				return err
			}
			t2 := db2.Table("orders")
			if t2 == nil {
				return fmt.Errorf("E10: table lost")
			}
			v := t2.View(nil)
			count := v.Count()
			v.Close()
			db2.Close()
			if count != n {
				return fmt.Errorf("E10: recovered %d rows, want %d", count, n)
			}
			return nil
		})
		if err != nil {
			return err
		}
		sp := "-"
		if savepointEvery > 0 {
			sp = benchfmt.Dur(spTotal)
		}
		rep.AddRow(label, benchfmt.Rate(n, insD), benchfmt.Bytes(int(logSize)), sp, benchfmt.Dur(recD))
		return nil
	}
	if err := runPersist("WAL, no savepoint", 0); err != nil {
		return nil, err
	}
	if err := runPersist("WAL + savepoint every n/3", n/3); err != nil {
		return nil, err
	}
	rep.AddNote("recovery includes reopening the store, replaying redo, and verifying the row count")
	return rep, nil
}

// E11CalcGraph measures calculation-graph execution (Fig. 2/3):
// star-join aggregation, shared-subexpression reuse, and
// split/combine parallelism.
func E11CalcGraph(cfg Config) (*benchfmt.Report, error) {
	facts := cfg.n(200_000)
	rep := &benchfmt.Report{
		ID: "E11", Title: "Calc graph execution (Fig. 2/3)",
		Claim:  "calc graphs execute star joins, reuse shared subexpressions, and parallelize via split/combine",
		Header: []string{"plan", "latency"},
	}
	db, err := memDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	sg := workload.NewStarGen(cfg.Seed, 2_000, 200, 365)
	mk := func(name string, schema *types.Schema, rows [][]types.Value) (*core.Table, error) {
		t, err := db.CreateTable(core.TableConfig{Name: name, Schema: schema, Compress: true, CompactDicts: true})
		if err != nil {
			return nil, err
		}
		if err := bulkLoad(db, t, rows); err != nil {
			return nil, err
		}
		return t, drainToMain(t)
	}
	sales, err := mk("sales", workload.SalesSchema(), sg.SaleRows(facts))
	if err != nil {
		return nil, err
	}
	custs, err := mk("customers", workload.CustomerSchema(), sg.CustomerRows())
	if err != nil {
		return nil, err
	}
	prods, err := mk("products", workload.ProductSchema(), sg.ProductRows())
	if err != nil {
		return nil, err
	}

	// Star join: revenue by region × category.
	starD, err := medianOf(3, func() error {
		g := calc.NewGraph()
		sj := g.StarJoin(g.Table(sales),
			calc.StarDim{In: g.Table(custs), KeyCol: 0, FactCol: 1, Payload: []int{2}},
			calc.StarDim{In: g.Table(prods), KeyCol: 0, FactCol: 2, Payload: []int{2}},
		)
		agg := g.Aggregate(sj, []int{6, 7}, engine.Agg{Func: engine.AggSum, Col: 5})
		_, err := calc.Execute(g, agg, calc.Env{})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.AddRow("star join + group-by (2 dims)", benchfmt.Dur(starD))

	// Shared subexpression: an expensive script node (the stand-in for
	// the paper's imperative L/custom nodes) consumed by two
	// aggregates. With CSE it runs once; duplicated it runs per
	// consumer.
	bucketize := func(rows [][]types.Value) ([][]types.Value, error) {
		out := make([][]types.Value, len(rows))
		for i, r := range rows {
			out[i] = []types.Value{r[0], types.Int(int64(r[0].F / 100))}
		}
		return out, nil
	}
	buildCSE := func(shared bool) (*calc.Graph, *calc.Node) {
		g := calc.NewGraph()
		mkBranch := func() *calc.Node {
			// Projection narrows the scan; the script derives a bucket
			// column: output rows are (revenue, bucket).
			return g.Script(g.Project(g.Table(sales), 5), "bucketize", bucketize)
		}
		var left, right *calc.Node
		if shared {
			s := mkBranch()
			left, right = s, s
		} else {
			left, right = mkBranch(), mkBranch()
		}
		a := g.Aggregate(left, []int{1}, engine.Agg{Func: engine.AggCount})
		b := g.Aggregate(right, []int{1}, engine.Agg{Func: engine.AggSum, Col: 0})
		return g, g.Union(g.Limit(a, 5), g.Limit(b, 5))
	}
	sharedD, err := medianOf(3, func() error {
		g, root := buildCSE(true)
		_, err := calc.Execute(g, root, calc.Env{})
		return err
	})
	if err != nil {
		return nil, err
	}
	unsharedD, err := medianOf(3, func() error {
		g, root := buildCSE(false)
		_, err := calc.Execute(g, root, calc.Env{})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.AddRow("two aggregates over shared script node (CSE)", benchfmt.Dur(sharedD))
	rep.AddRow("two aggregates, script node duplicated", benchfmt.Dur(unsharedD))

	// Split/combine widths.
	for _, width := range []int{1, 2, 4} {
		w := width
		d, err := medianOf(3, func() error {
			g := calc.NewGraph()
			src := g.Table(sales)
			parts := g.Split(src, w, 1)
			var branches []*calc.Node
			for _, p := range parts {
				branches = append(branches, g.Aggregate(p, []int{1}, engine.Agg{Func: engine.AggSum, Col: 5}))
			}
			comb := g.Combine(branches...)
			final := g.Aggregate(comb, []int{0}, engine.Agg{Func: engine.AggSum, Col: 1})
			_, err := calc.Execute(g, final, calc.Env{})
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("split/combine width %d", w), benchfmt.Dur(d))
	}
	rep.AddNote("single-core host: split/combine shows overhead, not speed-up; the structure is what §2.1 describes")
	return rep, nil
}

// E12UnifiedAccess measures the unified access paths of §3.1: the
// global sorted dictionary over all three stages and unique-constraint
// checks through the stages' inverted indexes.
func E12UnifiedAccess(cfg Config) (*benchfmt.Report, error) {
	rep := &benchfmt.Report{
		ID: "E12", Title: "Unified table access (§3.1)",
		Claim:  "one sorted dictionary view and one constraint check span L1-delta, L2-delta, and main",
		Header: []string{"metric", "value"},
	}
	db, err := memDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	t, err := orderTable(db, "orders", core.TableConfig{CheckUnique: true})
	if err != nil {
		return nil, err
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	// Spread rows: main, then L2, then L1.
	mainN, l2N, l1N := cfg.n(60_000), cfg.n(20_000), cfg.n(5_000)
	if err := bulkLoad(db, t, gen.Rows(mainN)); err != nil {
		return nil, err
	}
	if err := drainToMain(t); err != nil {
		return nil, err
	}
	if err := bulkLoad(db, t, gen.Rows(l2N)); err != nil {
		return nil, err
	}
	if err := insertRows(db, t, gen.Rows(l1N)); err != nil {
		return nil, err
	}
	st := t.Stats()
	rep.AddRow("stage spread (L1/L2/main)", fmt.Sprintf("%d / %d / %d", st.L1Rows, st.L2Rows+st.FrozenL2Rows, st.MainRows))

	d, err := medianOf(3, func() error {
		dict := t.GlobalSortedDict(1) // customer column
		if dict.Len() == 0 {
			return fmt.Errorf("empty global dictionary")
		}
		// Verify sortedness across stage boundaries.
		for i := 1; i < dict.Len(); i++ {
			if types.Compare(dict.At(uint32(i-1)), dict.At(uint32(i))) >= 0 {
				return fmt.Errorf("global dictionary not sorted")
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.AddRow("global sorted dictionary (customer col, build+verify)", benchfmt.Dur(d))

	// Unique-checked insert rate with keys spanning all stages.
	checkN := cfg.n(10_000)
	fresh := gen.Rows(checkN)
	insD, err := timeIt(func() error { return insertRows(db, t, fresh) })
	if err != nil {
		return nil, err
	}
	rep.AddRow("unique-checked insert rate", benchfmt.Rate(checkN, insD))

	// Duplicate inserts against every stage are rejected.
	dupKeys := []int64{1, int64(mainN + 1), int64(mainN + l2N + 1)}
	for _, k := range dupKeys {
		tx := db.Begin(mvcc.TxnSnapshot)
		row := gen.Rows(1)[0]
		row[0] = types.Int(k)
		if _, err := t.Insert(tx, row); !errors.Is(err, core.ErrDuplicateKey) {
			db.Abort(tx)
			return nil, fmt.Errorf("E12: duplicate key %d not rejected (err=%v)", k, err)
		}
		db.Abort(tx)
	}
	rep.AddRow("duplicate rejection across stages", "3/3 rejected")

	// Point queries resolving in each stage.
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := mainN + l2N + l1N
	pq, err := medianOf(3, func() error {
		v := t.View(nil)
		defer v.Close()
		for i := 0; i < 1000; i++ {
			v.Get(types.Int(1 + rng.Int63n(int64(total))))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.AddRow("point queries across stages (1k keys)", benchfmt.Dur(pq))
	return rep, nil
}
