// Package experiments reproduces, as measurements, every figure of
// the paper's technical sections (the paper is an architecture paper:
// its figures illustrate mechanisms and claims rather than plotting
// numbers, so each experiment quantifies the claimed characteristic
// on this implementation — see DESIGN.md §5 for the index).
//
// Each experiment builds its own workload, runs the mechanism, and
// returns a benchfmt.Report; cmd/hanabench prints them and
// EXPERIMENTS.md records paper-vs-measured per experiment.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/mvcc"
	"repro/internal/types"
	"repro/internal/workload"
)

// Config scales the experiments; Scale 1.0 targets a ~1-minute
// single-core full run per experiment group.
type Config struct {
	Scale float64
	Seed  int64
}

// DefaultConfig is the standard run.
var DefaultConfig = Config{Scale: 1.0, Seed: 42}

func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// Experiment is a runnable reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*benchfmt.Report, error)
}

// All lists the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"E01", "Record life cycle walkthrough (Fig. 4)", E01Lifecycle},
		{"E02", "Incremental L1→L2 merge (Fig. 6)", E02L1L2Merge},
		{"E03", "Classic L2→main merge and fast paths (Fig. 7)", E03ClassicMerge},
		{"E04", "Re-sorting merge compression gain (Fig. 8)", E04ResortMerge},
		{"E05", "Partial merge cost (Fig. 9)", E05PartialMerge},
		{"E06", "Queries on split main (Fig. 10)", E06SplitMainQuery},
		{"E07", "Life-cycle characteristics matrix (Fig. 11)", E07Matrix},
		{"E08", "End of the column store myth (§1/§5)", E08Myth},
		{"E09", "MVCC isolation levels (§1)", E09MVCC},
		{"E10", "Logging, savepoints, recovery (Fig. 5)", E10Persistence},
		{"E11", "Calc graph execution (Fig. 2/3)", E11CalcGraph},
		{"E12", "Unified table access (§3.1)", E12UnifiedAccess},
		{"E13", "Vectorized batch read path (§3.1)", E13Vectorized},
		{"E15", "Morsel-parallel scan scaling (§3.1)", E15ParallelScan},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ---

// memDB opens an in-memory database without the scheduler (the
// experiments drive merges explicitly for determinism).
func memDB() (*core.Database, error) {
	return core.OpenDatabase(core.DBOptions{})
}

// orderTable creates the standard order table.
func orderTable(db *core.Database, name string, cfg core.TableConfig) (*core.Table, error) {
	cfg.Name = name
	cfg.Schema = workload.OrderSchema()
	if cfg.L1MaxRows == 0 {
		cfg.L1MaxRows = 10_000
	}
	cfg.Compress = true
	cfg.CompactDicts = true
	return db.CreateTable(cfg)
}

// insertRows commits rows one transaction per row (OLTP path).
func insertRows(db *core.Database, t *core.Table, rows [][]types.Value) error {
	for _, r := range rows {
		tx := db.Begin(mvcc.TxnSnapshot)
		if _, err := t.Insert(tx, r); err != nil {
			tx.Abort()
			return err
		}
		if err := db.Commit(tx); err != nil {
			return err
		}
	}
	return nil
}

// bulkLoad commits rows in one bulk transaction (L2 path).
func bulkLoad(db *core.Database, t *core.Table, rows [][]types.Value) error {
	tx := db.Begin(mvcc.TxnSnapshot)
	if _, err := t.BulkInsert(tx, rows); err != nil {
		tx.Abort()
		return err
	}
	return db.Commit(tx)
}

// drainToMain pushes everything through both merges.
func drainToMain(t *core.Table) error {
	for {
		if _, err := t.MergeL1(); err != nil {
			return err
		}
		if _, err := t.MergeMain(); err != nil {
			return err
		}
		st := t.Stats()
		if st.L1Rows == 0 && st.L2Rows == 0 && st.FrozenL2Rows == 0 {
			return nil
		}
	}
}

// timeIt measures fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// medianOf runs fn reps times and returns the median duration.
func medianOf(reps int, fn func() error) (time.Duration, error) {
	ds := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		d, err := timeIt(fn)
		if err != nil {
			return 0, err
		}
		ds = append(ds, d)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[len(ds)/2], nil
}

func fmtInt(n int) string { return fmt.Sprintf("%d", n) }
