package experiments

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/vec"
	"repro/internal/workload"
)

// E15ParallelScan measures morsel-parallel scan scaling (ISSUE 6):
// the same 1M-row scan dispatched over 1, 2, 4, and GOMAXPROCS
// workers, first as a raw batch scan (the kernel the worker pool
// amortizes) and then as the scan-aggregate the calc layer emits. The
// acceptance floor is a 2x speedup at 4 workers over the sequential
// path; the Metrics block is the trajectory point recorded in
// BENCH_parallel_scan.json (ROADMAP item 5).
func E15ParallelScan(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(1_000_000)
	rep := &benchfmt.Report{
		ID: "E15", Title: "Morsel-parallel scan scaling (§3.1)",
		Claim:  "splitting the unified-table scan into fixed-size morsels over a worker pool scales scan-heavy queries with cores",
		Header: []string{"pipeline", "workers", "rows", "time", "speedup"},
	}

	db, err := memDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	t, err := orderTable(db, "orders", core.TableConfig{L2MaxRows: 2 * n})
	if err != nil {
		return nil, err
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	if err := bulkLoad(db, t, gen.Rows(n)); err != nil {
		return nil, err
	}
	if err := drainToMain(t); err != nil {
		return nil, err
	}

	workerSet := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		workerSet = append(workerSet, g)
	}
	rep.SetMetric("rows", float64(n))
	rep.SetMetric("gomaxprocs", float64(runtime.GOMAXPROCS(0)))

	// Raw morsel-parallel scan: decode every batch, count rows. The
	// callback does no per-row work, so this isolates the scan kernel
	// plus dispatch overhead. Each run pins its own view (views hold
	// the table read latch).
	var scanBase time.Duration
	for _, w := range workerSet {
		w := w
		runtime.GC()
		d, err := medianOf(3, func() error {
			v := t.View(nil)
			defer v.Close()
			var rows atomic.Int64
			err := v.ScanBatchesParallel(nil, nil, nil, vec.DefaultBatchSize, w,
				func(_, _ int, b *vec.Batch) bool {
					rows.Add(int64(b.Rows()))
					return true
				})
			if err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if w == 1 {
			scanBase = d
		}
		rep.AddRow("raw batch scan", fmtInt(w), fmtInt(n), benchfmt.Dur(d),
			benchfmt.Factor(scanBase.Seconds(), d.Seconds()))
		rep.SetMetric(metricName("scan_seconds_w", w), d.Seconds())
		rep.SetMetric(metricName("scan_speedup_w", w), scanBase.Seconds()/d.Seconds())
	}

	// Scan-aggregate: the BatchHashAggregate drain the calc layer
	// fuses onto parallel tables — per-worker partial accumulators
	// merged in first-seen order at combine.
	groupBy := []int{3}
	aggs := []engine.Agg{
		{Func: engine.AggCount},
		{Func: engine.AggSum, Col: 5},
		{Func: engine.AggSum, Col: 6},
	}
	var aggBase time.Duration
	for _, w := range workerSet {
		w := w
		runtime.GC()
		d, err := medianOf(3, func() error {
			_, err := engine.CollectBatches(&engine.BatchHashAggregate{
				In:      &engine.BatchTableScan{Table: t, Workers: w},
				GroupBy: groupBy, Aggs: aggs,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		if w == 1 {
			aggBase = d
		}
		rep.AddRow("scan-aggregate", fmtInt(w), fmtInt(n), benchfmt.Dur(d),
			benchfmt.Factor(aggBase.Seconds(), d.Seconds()))
		rep.SetMetric(metricName("agg_seconds_w", w), d.Seconds())
		rep.SetMetric(metricName("agg_speedup_w", w), aggBase.Seconds()/d.Seconds())
	}

	rep.AddNote("raw-scan speedup at 4 workers: %s on GOMAXPROCS=%d (acceptance floor 2x needs >=4 cores; on a single-core host the interesting number is the overhead, i.e. how close to 1.0x the pool stays)",
		benchfmt.Factor(scanBase.Seconds(), rep.Metrics["scan_seconds_w4"]), runtime.GOMAXPROCS(0))
	rep.AddNote("worker counts above the morsel count are clamped; ScanWorkers=1 is the sequential single-cursor path")
	return rep, nil
}

func metricName(prefix string, w int) string { return prefix + fmtInt(w) }
