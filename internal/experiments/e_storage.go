package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/workload"
)

// E01Lifecycle walks one batch of records through the full life cycle
// (Fig. 4): inserts land in the L1-delta, the L1→L2 merge pivots them
// into the columnar L2-delta, the L2→main merge lands them in the
// compressed main — each stage trading write locality for read
// efficiency and footprint.
func E01Lifecycle(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(50_000)
	db, err := memDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()
	t, err := orderTable(db, "orders", core.TableConfig{L1MaxRows: n + 1})
	if err != nil {
		return nil, err
	}
	rep := &benchfmt.Report{
		ID: "E01", Title: "Record life cycle walkthrough (Fig. 4)",
		Claim:  "records propagate L1→L2→main, ending in the most read-efficient, most compressed store",
		Header: []string{"phase", "L1 rows", "L2 rows", "main rows", "heap", "bytes/row"},
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	rows := gen.Rows(n)

	snap := func(phase string, d time.Duration) {
		st := t.Stats()
		total := st.L1Bytes + st.L2Bytes + st.MainBytes
		rep.AddRow(phase, fmtInt(st.L1Rows), fmtInt(st.L2Rows+st.FrozenL2Rows), fmtInt(st.MainRows),
			benchfmt.Bytes(total), benchfmt.PerRow(total, n))
		if d > 0 {
			rep.AddNote("%s took %s (%s)", phase, benchfmt.Dur(d), benchfmt.Rate(n, d))
		}
	}
	d, err := timeIt(func() error { return insertRows(db, t, rows) })
	if err != nil {
		return nil, err
	}
	snap("after inserts (L1)", d)
	d, err = timeIt(func() error {
		for {
			moved, err := t.MergeL1()
			if err != nil || moved == 0 {
				return err
			}
		}
	})
	if err != nil {
		return nil, err
	}
	snap("after L1→L2 merge", d)
	d, err = timeIt(func() error { _, err := t.MergeMain(); return err })
	if err != nil {
		return nil, err
	}
	snap("after L2→main merge", d)

	// Every record still answers by key with its original content.
	v := t.View(nil)
	missing := 0
	for i := 0; i < 100; i++ {
		if v.Get(rows[i*len(rows)/100][0]) == nil {
			missing++
		}
	}
	v.Close()
	if missing > 0 {
		return nil, fmt.Errorf("E01: %d keys lost in propagation", missing)
	}
	rep.AddNote("100/100 sampled keys still resolve after full propagation")
	return rep, nil
}

// E02L1L2Merge measures the incremental L1→L2 merge (Fig. 6): its
// cost scales with the migrated batch and is independent of how large
// the receiving L2-delta already is (append-only dictionaries and
// vectors).
func E02L1L2Merge(cfg Config) (*benchfmt.Report, error) {
	rep := &benchfmt.Report{
		ID: "E02", Title: "Incremental L1→L2 merge (Fig. 6)",
		Claim:  "the L1→L2 merge is incremental: cost tracks the batch size, not the target size",
		Header: []string{"existing L2 rows", "batch", "merge time", "rows/s"},
	}
	for _, existing := range []int{0, cfg.n(100_000), cfg.n(300_000)} {
		for _, batch := range []int{cfg.n(1_000), cfg.n(10_000), cfg.n(50_000)} {
			db, err := memDB()
			if err != nil {
				return nil, err
			}
			t, err := orderTable(db, "orders", core.TableConfig{L1MaxRows: 1 << 30, L1MergeBatch: batch})
			if err != nil {
				db.Close()
				return nil, err
			}
			gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
			if existing > 0 {
				if err := bulkLoad(db, t, gen.Rows(existing)); err != nil {
					db.Close()
					return nil, err
				}
			}
			// Median of three merge steps smooths allocator noise.
			if err := insertRows(db, t, gen.Rows(3*batch)); err != nil {
				db.Close()
				return nil, err
			}
			d, err := medianOf(3, func() error { _, err := t.MergeL1(); return err })
			if err != nil {
				db.Close()
				return nil, err
			}
			rep.AddRow(fmtInt(existing), fmtInt(batch), benchfmt.Dur(d), benchfmt.Rate(batch, d))
			db.Close()
		}
	}
	return rep, nil
}

// narrowSchema is a two-column table isolating one dictionary column.
func narrowSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "id", Kind: types.KindInt64},
		{Name: "val", Kind: types.KindString},
	}, 0)
}

func narrowRows(startID int64, n int, word func(i int) string) [][]types.Value {
	out := make([][]types.Value, n)
	for i := range out {
		out[i] = []types.Value{types.Int(startID + int64(i)), types.Str(word(i))}
	}
	return out
}

// E03ClassicMerge measures the classic L2→main merge (Fig. 7): cost
// grows with the size of the main being rewritten, and the §4.1
// dictionary fast paths (subset, append-only) cut the dictionary
// phase.
func E03ClassicMerge(cfg Config) (*benchfmt.Report, error) {
	rep := &benchfmt.Report{
		ID: "E03", Title: "Classic L2→main merge and fast paths (Fig. 7)",
		Claim:  "a full merge rewrites the main (cost grows with main size); subset/append dictionaries skip phase 1",
		Header: []string{"main rows", "delta rows", "delta dict", "merge time", "city fast path"},
	}
	delta := cfg.n(20_000)
	mainWord := func(i int) string { return fmt.Sprintf("word-%04d", i%1000) }

	// Part 1: merge time vs main size (disjoint delta dictionary).
	for _, mainN := range []int{cfg.n(50_000), cfg.n(200_000), cfg.n(500_000)} {
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := db.CreateTable(core.TableConfig{
			Name: "t", Schema: narrowSchema(), Compress: true, CompactDicts: true,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := bulkLoad(db, t, narrowRows(1, mainN, mainWord)); err != nil {
			db.Close()
			return nil, err
		}
		if err := drainToMain(t); err != nil {
			db.Close()
			return nil, err
		}
		if err := bulkLoad(db, t, narrowRows(int64(mainN)+1, delta,
			func(i int) string { return fmt.Sprintf("fresh-%05d", i%2000) })); err != nil {
			db.Close()
			return nil, err
		}
		var stats fastPathStats
		d, err := timeIt(func() error { return mergeOnce(t, &stats) })
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.AddRow(fmtInt(mainN), fmtInt(delta), "disjoint", benchfmt.Dur(d), stats.city)
		db.Close()
	}

	// Part 2: fast paths at fixed sizes.
	mainN := cfg.n(200_000)
	cases := []struct {
		name string
		word func(i int) string
	}{
		{"disjoint", func(i int) string { return fmt.Sprintf("fresh-%05d", i%2000) }},
		{"subset", mainWord},
		{"append", func(i int) string { return fmt.Sprintf("zzz-%07d", i) }},
	}
	for _, c := range cases {
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := db.CreateTable(core.TableConfig{
			Name: "t", Schema: narrowSchema(), Compress: true, CompactDicts: true,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := bulkLoad(db, t, narrowRows(1, mainN, mainWord)); err != nil {
			db.Close()
			return nil, err
		}
		if err := drainToMain(t); err != nil {
			db.Close()
			return nil, err
		}
		if err := bulkLoad(db, t, narrowRows(int64(mainN)+1, delta, c.word)); err != nil {
			db.Close()
			return nil, err
		}
		var stats fastPathStats
		d, err := timeIt(func() error { return mergeOnce(t, &stats) })
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.AddRow(fmtInt(mainN), fmtInt(delta), c.name, benchfmt.Dur(d), stats.city)
		db.Close()
	}
	rep.AddNote("'city fast path' is the dictionary fast path of the val column (§4.1)")
	return rep, nil
}

type fastPathStats struct{ city string }

func mergeOnce(t *core.Table, out *fastPathStats) error {
	stats, err := t.MergeMain()
	if err != nil {
		return err
	}
	if stats != nil && len(stats.FastPaths) > 1 {
		out.city = stats.FastPaths[1].String()
	}
	return nil
}

// E04ResortMerge compares the classic merge against the re-sorting
// merge (Fig. 8) on a wide, low-cardinality table (the fact-table
// shape §4.2 targets): re-sorting clusters the repetitive columns so
// run-length/cluster coding bites across all of them, shrinking the
// main and speeding scans, at extra merge cost.
func E04ResortMerge(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(150_000)
	rep := &benchfmt.Report{
		ID: "E04", Title: "Re-sorting merge compression gain (Fig. 8)",
		Claim:  "re-sorting the table by statistics-chosen columns raises cross-column compression at extra merge cost",
		Header: []string{"strategy", "merge time", "main heap", "dim columns", "dim B/row", "clustered-col scan"},
	}
	// id + five low-cardinality dimension columns + one measure: the
	// shape where positional re-sorting pays across columns.
	schema := types.MustSchema([]types.Column{
		{Name: "id", Kind: types.KindInt64},
		{Name: "region", Kind: types.KindString},
		{Name: "country", Kind: types.KindString},
		{Name: "category", Kind: types.KindString},
		{Name: "status", Kind: types.KindString},
		{Name: "priority", Kind: types.KindInt64},
		{Name: "qty", Kind: types.KindInt64},
	}, 0)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			types.Int(int64(i + 1)),
			types.Str(workload.Regions[rng.Intn(len(workload.Regions))]),
			types.Str(fmt.Sprintf("country-%02d", rng.Intn(30))),
			types.Str(workload.Categories[rng.Intn(len(workload.Categories))]),
			types.Str(workload.Statuses[rng.Intn(len(workload.Statuses))]),
			types.Int(int64(rng.Intn(3))),
			types.Int(int64(rng.Intn(50))),
		}
	}
	for _, strat := range []core.MergeStrategy{core.MergeClassic, core.MergeResort} {
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := db.CreateTable(core.TableConfig{
			Name: "facts", Schema: schema, Strategy: strat,
			Compress: true, CompactDicts: true,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := bulkLoad(db, t, rows); err != nil {
			db.Close()
			return nil, err
		}
		d, err := timeIt(func() error { return drainToMain(t) })
		if err != nil {
			db.Close()
			return nil, err
		}
		st := t.Stats()
		// Aggregate over a now-clustered column (count+sum by region).
		scanD, err := medianOf(3, func() error {
			v := t.View(nil)
			defer v.Close()
			_, err := v.AggregateNumeric(1, []int{6})
			return err
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		// Footprint of the five compressible dimension columns — the
		// quantity the positional re-sort acts on (the id column,
		// per-row metadata, and the PK inverted index are invariant).
		dimBytes := 0
		for col := 1; col <= 5; col++ {
			dimBytes += t.MainColumnBytes(col)
		}
		rep.AddRow(strat.String(), benchfmt.Dur(d), benchfmt.Bytes(st.MainBytes),
			benchfmt.Bytes(dimBytes), benchfmt.PerRow(dimBytes, n), benchfmt.Dur(scanD))
		db.Close()
	}
	rep.AddNote("schema: id + 5 low-cardinality dimension columns + measure; %d rows, shuffled arrival order", n)
	return rep, nil
}

// E05PartialMerge compares repeated full merges against partial
// merges (Fig. 9): the partial merge rebuilds only the active main,
// so its cost tracks the delta, not the accumulated table.
func E05PartialMerge(cfg Config) (*benchfmt.Report, error) {
	base := cfg.n(300_000)
	deltaN := cfg.n(20_000)
	const rounds = 5
	rep := &benchfmt.Report{
		ID: "E05", Title: "Partial merge cost (Fig. 9)",
		Claim:  "partial merges leave the passive main untouched: per-merge cost stays near the delta size while full merges pay for the whole table",
		Header: []string{"strategy", "round", "merge time", "main parts"},
	}
	for _, strat := range []core.MergeStrategy{core.MergeClassic, core.MergePartial} {
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := orderTable(db, "orders", core.TableConfig{
			Strategy: strat, ActiveMainMax: base, // promote once the base is passive
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
		if err := bulkLoad(db, t, gen.Rows(base)); err != nil {
			db.Close()
			return nil, err
		}
		if err := drainToMain(t); err != nil {
			db.Close()
			return nil, err
		}
		var total time.Duration
		for round := 1; round <= rounds; round++ {
			if err := bulkLoad(db, t, gen.Rows(deltaN)); err != nil {
				db.Close()
				return nil, err
			}
			d, err := timeIt(func() error { _, err := t.MergeMain(); return err })
			if err != nil {
				db.Close()
				return nil, err
			}
			total += d
			rep.AddRow(strat.String(), fmtInt(round), benchfmt.Dur(d), fmtInt(t.Stats().MainParts))
		}
		rep.AddNote("%s: total merge time over %d rounds: %s", strat, rounds, benchfmt.Dur(total))
		db.Close()
	}
	return rep, nil
}

// E06SplitMainQuery measures point and range queries against a
// single-part main versus a passive/active split main (Fig. 10).
func E06SplitMainQuery(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(200_000)
	rep := &benchfmt.Report{
		ID: "E06", Title: "Queries on split main (Fig. 10)",
		Claim:  "point and range access stay efficient on a split main: passive dictionary first, active dictionary second, range scans broken into partial code ranges",
		Header: []string{"main layout", "point q (1k keys)", "range q", "range rows"},
	}
	layouts := []struct {
		name     string
		activePt int // percent of rows landing in the active main
	}{
		{"single part", 0}, {"10% active", 10}, {"50% active", 50},
	}
	for _, lay := range layouts {
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		strat := core.MergeClassic
		if lay.activePt > 0 {
			strat = core.MergePartial
		}
		passiveRows := n * (100 - lay.activePt) / 100
		t, err := orderTable(db, "orders", core.TableConfig{
			// Promote once the passive load is merged, so the second
			// load builds a separate active part.
			Strategy: strat, ActiveMainMax: passiveRows,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
		if err := bulkLoad(db, t, gen.Rows(passiveRows)); err != nil {
			db.Close()
			return nil, err
		}
		if err := drainToMain(t); err != nil {
			db.Close()
			return nil, err
		}
		if lay.activePt > 0 {
			if err := bulkLoad(db, t, gen.Rows(n-passiveRows)); err != nil {
				db.Close()
				return nil, err
			}
			if err := drainToMain(t); err != nil {
				db.Close()
				return nil, err
			}
			if parts := t.Stats().MainParts; parts < 2 {
				db.Close()
				return nil, fmt.Errorf("E06: expected split main, got %d parts", parts)
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		pointD, err := medianOf(3, func() error {
			v := t.View(nil)
			defer v.Close()
			for i := 0; i < 1000; i++ {
				v.Get(types.Int(1 + rng.Int63n(int64(n))))
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		var rangeRows int
		rangeD, err := medianOf(3, func() error {
			v := t.View(nil)
			defer v.Close()
			rangeRows = 0
			v.ScanRange(1, types.Str("C"), types.Str("D"), true, false, func(core.Match) bool {
				rangeRows++
				return true
			})
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.AddRow(lay.name, benchfmt.Dur(pointD), benchfmt.Dur(rangeD), fmtInt(rangeRows))
		db.Close()
	}
	return rep, nil
}

// E07Matrix quantifies the qualitative characteristics matrix of
// Fig. 11: per stage, write throughput, point-query and scan
// performance, and memory footprint.
func E07Matrix(cfg Config) (*benchfmt.Report, error) {
	n := cfg.n(100_000)
	rep := &benchfmt.Report{
		ID: "E07", Title: "Life-cycle characteristics matrix (Fig. 11)",
		Claim:  "L1: write-optimized, largest footprint; L2: balanced; main: read-optimized, smallest footprint",
		Header: []string{"stage", "write", "point q (1k)", "column scan", "heap", "bytes/row"},
	}
	gen := workload.NewOrderGen(cfg.Seed, 10_000, 1_000)
	rows := gen.Rows(n)
	rng := rand.New(rand.NewSource(cfg.Seed))

	measure := func(stage string, t *core.Table, db *core.Database, writeD time.Duration, bytes int) error {
		pointD, err := medianOf(3, func() error {
			v := t.View(nil)
			defer v.Close()
			for i := 0; i < 1000; i++ {
				v.Get(types.Int(1 + rng.Int63n(int64(n))))
			}
			return nil
		})
		if err != nil {
			return err
		}
		scanD, err := medianOf(3, func() error {
			v := t.View(nil)
			defer v.Close()
			var sum int64
			v.ScanColumn(5, func(_ types.RowID, val types.Value) bool {
				sum += val.I
				return true
			})
			return nil
		})
		if err != nil {
			return err
		}
		rep.AddRow(stage, benchfmt.Rate(n, writeD), benchfmt.Dur(pointD),
			benchfmt.Rate(n, scanD), benchfmt.Bytes(bytes), benchfmt.PerRow(bytes, n))
		return nil
	}

	// Stage 1: rows held in the L1-delta.
	{
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := orderTable(db, "orders", core.TableConfig{L1MaxRows: n + 1})
		if err != nil {
			db.Close()
			return nil, err
		}
		writeD, err := timeIt(func() error { return insertRows(db, t, rows) })
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := measure("L1-delta (row, uncompressed)", t, db, writeD, t.Stats().L1Bytes); err != nil {
			db.Close()
			return nil, err
		}
		db.Close()
	}
	// Stage 2: rows held in the L2-delta (bulk path).
	{
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := orderTable(db, "orders", core.TableConfig{})
		if err != nil {
			db.Close()
			return nil, err
		}
		writeD, err := timeIt(func() error { return bulkLoad(db, t, rows) })
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := measure("L2-delta (column, unsorted dict)", t, db, writeD, t.Stats().L2Bytes); err != nil {
			db.Close()
			return nil, err
		}
		db.Close()
	}
	// Stage 3: rows merged into the compressed main.
	{
		db, err := memDB()
		if err != nil {
			return nil, err
		}
		t, err := orderTable(db, "orders", core.TableConfig{Strategy: core.MergeResort})
		if err != nil {
			db.Close()
			return nil, err
		}
		loadD, err := timeIt(func() error {
			if err := bulkLoad(db, t, rows); err != nil {
				return err
			}
			return drainToMain(t)
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := measure("main (column, sorted dict, compressed)", t, db, loadD, t.Stats().MainBytes); err != nil {
			db.Close()
			return nil, err
		}
		db.Close()
	}
	rep.AddNote("write column: L1 = single-row transactions, L2 = bulk load, main = bulk load + full merge")
	return rep, nil
}
