package netfault

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pipeConn returns a connected in-memory conn pair.
func pipeConn(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestResetBreaksConnectionStickily(t *testing.T) {
	a, b := pipeConn(t)
	go io.Copy(io.Discard, b)
	fc := WrapConn(a, Plan{Seed: 1, ResetProb: 1}, 0)
	_, err := fc.Write([]byte("hello\n"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first write: %v, want ErrInjected", err)
	}
	if _, err := fc.Write([]byte("again\n")); !errors.Is(err, ErrInjected) {
		t.Fatalf("broken conn must stay broken: %v", err)
	}
	if fc.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1 (sticky breakage is not a new fault)", fc.Faults())
	}
}

func TestPartialWriteDeliversPrefixThenBreaks(t *testing.T) {
	a, b := pipeConn(t)
	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		got <- buf
	}()
	fc := WrapConn(a, Plan{Seed: 3, PartialProb: 1}, 1)
	msg := []byte("DELETE bench_orders 123456\n")
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n >= len(msg) {
		t.Fatalf("partial write delivered the whole message (%d bytes)", n)
	}
	buf := <-got
	if len(buf) != n {
		t.Fatalf("peer saw %d bytes, writer reported %d", len(buf), n)
	}
	if !strings.HasPrefix(string(msg), string(buf)) {
		t.Fatalf("peer bytes %q are not a prefix of %q", buf, msg)
	}
}

func TestDripReadsStillReassemble(t *testing.T) {
	a, b := pipeConn(t)
	const line = "SQL SELECT * FROM t WHERE id = 42\n"
	go func() {
		b.Write([]byte(line))
		b.Close()
	}()
	fc := WrapConn(a, Plan{Seed: 5, DripProb: 1, DripBytes: 2}, 2)
	r := bufio.NewReader(fc)
	got, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != line {
		t.Fatalf("reassembled %q, want %q", got, line)
	}
}

func TestStallDelaysButDelivers(t *testing.T) {
	a, b := pipeConn(t)
	go io.Copy(io.Discard, b)
	fc := WrapConn(a, Plan{Seed: 7, StallProb: 1, StallDur: 5 * time.Millisecond}, 3)
	start := time.Now()
	if _, err := fc.Write([]byte("x\n")); err != nil {
		t.Fatalf("stalled write must still succeed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 5ms stall", d)
	}
}

func TestDeterministicStreams(t *testing.T) {
	run := func() []int {
		var verdicts []int
		for idx := int64(0); idx < 4; idx++ {
			a, b := pipeConn(t)
			go io.Copy(io.Discard, b)
			fc := WrapConn(a, Plan{Seed: 42, ResetProb: 0.3}, idx)
			n := 0
			for i := 0; i < 20; i++ {
				if _, err := fc.Write([]byte("op\n")); err != nil {
					break
				}
				n++
			}
			verdicts = append(verdicts, n)
		}
		return verdicts
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("conn %d: %d ops vs %d ops across identical runs", i, first[i], second[i])
		}
	}
	// Distinct connections should not share a fault stream.
	same := true
	for i := 1; i < len(first); i++ {
		if first[i] != first[0] {
			same = false
		}
	}
	if same {
		t.Fatalf("all connections faulted at the same op: streams correlated: %v", first)
	}
}

func TestMaxFaultsCapsKills(t *testing.T) {
	a, b := pipeConn(t)
	go io.Copy(io.Discard, b)
	fc := WrapConn(a, Plan{Seed: 9, ResetProb: 1, MaxFaults: 0}, 4)
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("uncapped plan should kill: %v", err)
	}

	a2, b2 := pipeConn(t)
	go io.Copy(io.Discard, b2)
	// The dialer hands out fresh indexes; a capped plan on a fresh
	// conn whose budget is exhausted must never kill.
	fc2 := WrapConn(a2, Plan{Seed: 9, ResetProb: 1, MaxFaults: 0}, 5)
	fc2.mu.Lock()
	fc2.plan.MaxFaults = 1
	fc2.faults = 1
	fc2.mu.Unlock()
	if _, err := fc2.Write([]byte("x\n")); err != nil {
		t.Fatalf("capped conn must pass traffic through: %v", err)
	}
}

func TestDialerAndListenerWrap(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := WrapListener(ln, Plan{Seed: 11})
	defer fln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := fln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		if _, ok := c.(*Conn); !ok {
			t.Errorf("accepted conn is %T, want *netfault.Conn", c)
		}
		io.Copy(io.Discard, c)
		c.Close()
	}()
	dial := Dialer(Plan{Seed: 11}, nil)
	c, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("dialed conn is %T, want *netfault.Conn", c)
	}
	c.Write([]byte("ping\n"))
	c.Close()
	<-done
}
