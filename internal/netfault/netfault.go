// Package netfault injects deterministic, seeded network faults into
// net.Conn traffic: abrupt connection resets, stalls, partial writes,
// and slow-drip reads. It is the wire-level sibling of
// internal/vfs.FaultFS — where FaultFS proves the storage stack
// survives a dying disk, netfault proves the session/client stack
// survives a flaky network.
//
// Fault decisions are drawn from a per-connection PRNG derived from
// Plan.Seed and the connection's accept/dial index, so a given
// (plan, seed, connection sequence) replays the same faults. An
// injected partial write or reset always breaks the connection for
// good (sticky), mirroring a TCP RST: the peer may have received a
// prefix of the data, which is exactly the ambiguity the reconnecting
// client has to resolve.
package netfault

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error every faulted operation returns; callers
// detect a simulated network failure with errors.Is.
var ErrInjected = errors.New("netfault: injected fault")

// Plan configures seeded fault injection. Probabilities are per
// read/write call in [0,1]; zero disables that fault class.
type Plan struct {
	// Seed roots the per-connection PRNG streams.
	Seed int64
	// ResetProb abruptly closes the connection on a read or write.
	ResetProb float64
	// StallProb delays a read or write by StallDur before it proceeds.
	StallProb float64
	// StallDur is the stall length (default 2ms when StallProb > 0).
	StallDur time.Duration
	// PartialProb delivers only a random prefix of a write, then
	// breaks the connection — the torn-write of the network world.
	PartialProb float64
	// DripProb caps a read at DripBytes, forcing the peer's framing to
	// reassemble lines from dribbled fragments.
	DripProb float64
	// DripBytes is the slow-drip read cap (default 3).
	DripBytes int
	// MaxFaults caps injected resets+partials per connection; 0 means
	// unlimited. Stalls and drips do not count — they perturb timing
	// and framing but never kill the connection.
	MaxFaults int
}

func (p Plan) stallDur() time.Duration {
	if p.StallDur > 0 {
		return p.StallDur
	}
	return 2 * time.Millisecond
}

func (p Plan) dripBytes() int {
	if p.DripBytes > 0 {
		return p.DripBytes
	}
	return 3
}

// Conn wraps a net.Conn with fault injection. Safe for the usual
// net.Conn concurrency contract (one reader + one writer goroutine).
type Conn struct {
	inner net.Conn
	plan  Plan

	mu     sync.Mutex
	rng    *rand.Rand
	faults int
	broken bool
}

// WrapConn wraps c with plan, drawing faults from the stream rooted
// at (plan.Seed, idx). Wrap each connection with a distinct idx.
func WrapConn(c net.Conn, plan Plan, idx int64) *Conn {
	// Mix the index into the seed with splitmix-style constants so
	// adjacent connections get uncorrelated streams.
	seed := plan.Seed*int64(0x9e3779b97f4a7c15>>1) + idx*int64(0xbf58476d1ce4e5b9>>1)
	return &Conn{inner: c, plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// decide draws the fault verdict for one op. kill reports whether the
// connection must break now; stall and drip modulate the op.
func (c *Conn) decide(isWrite bool) (kill bool, stall bool, dripCap int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return false, false, 0, fmt.Errorf("use of broken connection: %w", ErrInjected)
	}
	mayKill := c.plan.MaxFaults == 0 || c.faults < c.plan.MaxFaults
	if c.plan.StallProb > 0 && c.rng.Float64() < c.plan.StallProb {
		stall = true
	}
	if mayKill && c.plan.ResetProb > 0 && c.rng.Float64() < c.plan.ResetProb {
		c.broken = true
		c.faults++
		return true, stall, 0, nil
	}
	if isWrite {
		if mayKill && c.plan.PartialProb > 0 && c.rng.Float64() < c.plan.PartialProb {
			c.broken = true
			c.faults++
			return true, stall, c.rng.Intn(8), nil // prefix length cap
		}
	} else if c.plan.DripProb > 0 && c.rng.Float64() < c.plan.DripProb {
		dripCap = c.plan.dripBytes()
	}
	return false, stall, dripCap, nil
}

// Faults returns the number of connection-killing faults injected.
func (c *Conn) Faults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

func (c *Conn) Read(p []byte) (int, error) {
	kill, stall, dripCap, err := c.decide(false)
	if err != nil {
		return 0, err
	}
	if stall {
		time.Sleep(c.plan.stallDur())
	}
	if kill {
		c.inner.Close()
		return 0, fmt.Errorf("read reset: %w", ErrInjected)
	}
	if dripCap > 0 && len(p) > dripCap {
		p = p[:dripCap]
	}
	return c.inner.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	kill, stall, prefix, err := c.decide(true)
	if err != nil {
		return 0, err
	}
	if stall {
		time.Sleep(c.plan.stallDur())
	}
	if kill {
		n := 0
		if prefix > 0 && len(p) > 0 {
			if prefix > len(p) {
				prefix = len(p)
			}
			n, _ = c.inner.Write(p[:prefix])
		}
		c.inner.Close()
		return n, fmt.Errorf("write reset after %d bytes: %w", n, ErrInjected)
	}
	return c.inner.Write(p)
}

func (c *Conn) Close() error                       { return c.inner.Close() }
func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener so every accepted connection is fault
// injected — the server-resilience side of the harness.
type Listener struct {
	net.Listener
	plan Plan
	idx  atomic.Int64
}

// WrapListener wraps ln with plan.
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.plan, l.idx.Add(1)), nil
}

// Dialer returns a dial function whose connections are fault
// injected, for the client side of the harness. Each dial gets the
// next connection index, so redials after injected resets see fresh
// fault streams.
func Dialer(plan Plan, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	var idx atomic.Int64
	return func(addr string) (net.Conn, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return WrapConn(c, plan, idx.Add(1)), nil
	}
}
