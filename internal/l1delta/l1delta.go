// Package l1delta implements the first stage of the unified table's
// record life cycle: "the L1-delta structure accepts all incoming
// data requests and stores them in a write-optimized manner, i.e. the
// L1-delta preserves the logical row format of the record. The data
// structure is optimized for fast insert and delete, field update,
// and record projection. Moreover, the L1-delta structure does not
// perform any data compression" (paper §3).
//
// Rows are appended in arrival order; each row carries an MVCC stamp.
// A hash index on the key column serves point queries and unique-
// constraint checks. The L1→L2 merge migrates a settled prefix into
// the L2-delta and replaces the store with a truncated successor that
// shares the surviving row objects, so pinned readers keep a
// consistent view ("all running operations either see the full
// L1-delta and the old end-of-delta border or the truncated version",
// §3.1).
//
// The store itself is not synchronized: the unified table serializes
// writers and lets readers capture an immutable view under its lock.
package l1delta

import (
	"repro/internal/mvcc"
	"repro/internal/types"
)

// Row is one record version in row format.
type Row struct {
	// ID is the record's life-long row id, assigned on entry.
	ID types.RowID
	// Values is the full row in logical column order. It is immutable
	// once appended; updates create a new version.
	Values []types.Value
	// Stamp is the MVCC version metadata, shared across store
	// generations.
	Stamp *mvcc.Stamp
}

// Store is an L1-delta generation.
type Store struct {
	schema *types.Schema
	rows   []*Row
	// keyIdx maps key value → positions (may include dead versions;
	// callers filter by visibility).
	keyIdx map[types.Value][]int
	// memSize tracks the approximate heap footprint.
	memSize int
}

// New returns an empty L1-delta for the schema.
func New(schema *types.Schema) *Store {
	s := &Store{schema: schema}
	if schema.Key >= 0 {
		s.keyIdx = make(map[types.Value][]int)
	}
	return s
}

// Len returns the number of row versions (live and dead).
func (s *Store) Len() int { return len(s.rows) }

// Schema returns the table schema.
func (s *Store) Schema() *types.Schema { return s.schema }

// Append adds a row version and returns its position.
func (s *Store) Append(r *Row) int {
	pos := len(s.rows)
	s.rows = append(s.rows, r)
	if s.keyIdx != nil {
		k := r.Values[s.schema.Key]
		s.keyIdx[k] = append(s.keyIdx[k], pos)
	}
	s.memSize += rowMemSize(r)
	return pos
}

// At returns the row at position pos.
func (s *Store) At(pos int) *Row { return s.rows[pos] }

// Rows returns the backing slice; callers must treat it as immutable
// up to the length they captured.
func (s *Store) Rows() []*Row { return s.rows }

// LookupKey returns the positions whose key column equals v. The
// caller filters by MVCC visibility.
func (s *Store) LookupKey(v types.Value) []int {
	if s.keyIdx == nil {
		return nil
	}
	return s.keyIdx[v]
}

// ScanVisible calls fn for every row version visible at snapshot snap
// to reader marker self, up to the structural border limit (exclusive;
// pass Len() captured at pin time). fn returning false stops the scan.
func (s *Store) ScanVisible(limit int, snap, self uint64, fn func(pos int, r *Row) bool) {
	if limit > len(s.rows) {
		limit = len(s.rows)
	}
	for pos := 0; pos < limit; pos++ {
		r := s.rows[pos]
		if mvcc.VisibleStamp(r.Stamp, snap, self) {
			if !fn(pos, r) {
				return
			}
		}
	}
}

// SettledPrefix returns the largest n ≤ limit such that rows[0:n] all
// have settled stamps (no in-flight transaction markers). Only a
// settled prefix may migrate to the L2-delta: a pending commit must
// write through the stamp the transaction recorded, which lives here.
func (s *Store) SettledPrefix(limit int) int {
	if limit > len(s.rows) {
		limit = len(s.rows)
	}
	for i := 0; i < limit; i++ {
		if !s.rows[i].Stamp.Settled() {
			return i
		}
	}
	return limit
}

// TruncatePrefix returns a new store generation containing the rows
// from position n onward. Surviving *Row objects are shared, so MVCC
// stamps stay unique per record version.
func (s *Store) TruncatePrefix(n int) *Store {
	ns := New(s.schema)
	for _, r := range s.rows[n:] {
		ns.Append(r)
	}
	return ns
}

// MemSize approximates the heap footprint in bytes. The L1-delta is
// the most expensive stage per row (Fig. 11: uncompressed row format
// plus index).
func (s *Store) MemSize() int { return s.memSize + 48 }

func rowMemSize(r *Row) int {
	n := 16 /* Stamp */ + 8 /* ID */ + 24 /* slice header */ + 16 /* ptr+idx */
	for _, v := range r.Values {
		n += 40 // Value struct
		n += len(v.S)
	}
	return n
}
