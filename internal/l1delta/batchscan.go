package l1delta

import (
	"repro/internal/mvcc"
	"repro/internal/types"
	"repro/internal/vec"
)

// BatchScan is the L1-delta's producer for the vectorized read path.
// The L1-delta stores uncompressed rows, so there are no dictionary
// codes to filter on: pushed-down predicates are evaluated per row on
// the values themselves via the filter callback.
type BatchScan struct {
	s      *Store
	cols   []int
	border int
	snap   uint64
	self   uint64
	// filter, when non-nil, receives the full row (schema order) and
	// keeps the row when it returns true.
	filter func(vals []types.Value) bool
	pos    int
}

// NewBatchScan returns a cursor over the visible rows in [0, border)
// that pass filter, producing the listed columns.
func (s *Store) NewBatchScan(cols []int, border int, snap, self uint64, filter func([]types.Value) bool) *BatchScan {
	return s.NewBatchScanRange(cols, 0, border, snap, self, filter)
}

// NewBatchScanRange returns a cursor over the visible rows in
// [start, end) that pass filter — the morsel-sized fragment the
// parallel scan dispatches to one worker.
func (s *Store) NewBatchScanRange(cols []int, start, end int, snap, self uint64, filter func([]types.Value) bool) *BatchScan {
	if end > len(s.rows) {
		end = len(s.rows)
	}
	if start < 0 {
		start = 0
	}
	return &BatchScan{s: s, cols: cols, border: end, snap: snap, self: self, filter: filter, pos: start}
}

// Fill appends up to room rows to out (one vec.Col per requested
// column) and reports how many were appended and whether the cursor
// may produce more.
func (c *BatchScan) Fill(out []*vec.Col, room int) (int, bool) {
	n := 0
	for c.pos < c.border && n < room {
		r := c.s.rows[c.pos]
		c.pos++
		if !mvcc.VisibleStamp(r.Stamp, c.snap, c.self) {
			continue
		}
		if c.filter != nil && !c.filter(r.Values) {
			continue
		}
		for i, col := range c.cols {
			out[i].Append(r.Values[col])
		}
		n++
	}
	return n, c.pos < c.border
}
