package l1delta

import (
	"testing"

	"repro/internal/mvcc"
	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "id", Kind: types.KindInt64},
		{Name: "name", Kind: types.KindString, Nullable: true},
	}, 0)
}

func committedRow(m *mvcc.Manager, id int64, name string) *Row {
	tx := m.Begin(mvcc.TxnSnapshot)
	st := mvcc.NewStamp(tx.Marker())
	tx.RecordCreate(st)
	tx.Commit()
	return &Row{ID: types.RowID(id), Values: []types.Value{types.Int(id), types.Str(name)}, Stamp: st}
}

func TestAppendAndLookup(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	for i := int64(1); i <= 5; i++ {
		pos := s.Append(committedRow(m, i, "n"))
		if pos != int(i-1) {
			t.Errorf("Append pos = %d, want %d", pos, i-1)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.LookupKey(types.Int(3)); len(got) != 1 || got[0] != 2 {
		t.Errorf("LookupKey(3) = %v", got)
	}
	if got := s.LookupKey(types.Int(99)); got != nil {
		t.Errorf("LookupKey(99) = %v", got)
	}
	if r := s.At(2); r.ID != 3 {
		t.Errorf("At(2).ID = %d", r.ID)
	}
}

func TestDuplicateKeyVersionsShareIndexBucket(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	s.Append(committedRow(m, 7, "a"))
	s.Append(committedRow(m, 7, "b")) // new version of key 7
	if got := s.LookupKey(types.Int(7)); len(got) != 2 {
		t.Errorf("LookupKey(7) = %v, want 2 positions", got)
	}
}

func TestScanVisibleRespectsSnapshotAndBorder(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	s.Append(committedRow(m, 1, "a"))
	snapBetween := m.LastCommitted()
	s.Append(committedRow(m, 2, "b"))

	var seen []int64
	s.ScanVisible(s.Len(), snapBetween, 0, func(_ int, r *Row) bool {
		seen = append(seen, r.Values[0].I)
		return true
	})
	if len(seen) != 1 || seen[0] != 1 {
		t.Errorf("snapshot scan saw %v", seen)
	}

	// Border: captured length hides later appends.
	seen = nil
	s.ScanVisible(1, m.LastCommitted(), 0, func(_ int, r *Row) bool {
		seen = append(seen, r.Values[0].I)
		return true
	})
	if len(seen) != 1 {
		t.Errorf("border scan saw %v", seen)
	}

	// Early stop.
	count := 0
	s.ScanVisible(s.Len(), m.LastCommitted(), 0, func(int, *Row) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestScanVisibleHidesUncommittedAndDeleted(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	s.Append(committedRow(m, 1, "a"))

	// Uncommitted insert by another txn.
	tx := m.Begin(mvcc.TxnSnapshot)
	st := mvcc.NewStamp(tx.Marker())
	tx.RecordCreate(st)
	s.Append(&Row{ID: 2, Values: []types.Value{types.Int(2), types.Str("x")}, Stamp: st})

	// Committed delete of row 1.
	del := m.Begin(mvcc.TxnSnapshot)
	if !s.At(0).Stamp.ClaimDelete(del.Marker()) {
		t.Fatal("claim failed")
	}
	del.RecordDelete(s.At(0).Stamp)
	del.Commit()

	var seen []int64
	s.ScanVisible(s.Len(), m.LastCommitted(), 0, func(_ int, r *Row) bool {
		seen = append(seen, r.Values[0].I)
		return true
	})
	if len(seen) != 0 {
		t.Errorf("scan saw %v, want nothing", seen)
	}

	// The inserting transaction sees its own uncommitted row — and,
	// because its snapshot predates the delete commit, still sees
	// row 1 as well.
	seen = nil
	s.ScanVisible(s.Len(), tx.ReadTS(), tx.Marker(), func(_ int, r *Row) bool {
		seen = append(seen, r.Values[0].I)
		return true
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("own scan saw %v, want [1 2]", seen)
	}
}

func TestSettledPrefix(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	s.Append(committedRow(m, 1, "a"))
	s.Append(committedRow(m, 2, "b"))

	tx := m.Begin(mvcc.TxnSnapshot)
	st := mvcc.NewStamp(tx.Marker())
	tx.RecordCreate(st)
	s.Append(&Row{ID: 3, Values: []types.Value{types.Int(3), types.Str("c")}, Stamp: st})
	s.Append(committedRow(m, 4, "d"))

	if got := s.SettledPrefix(s.Len()); got != 2 {
		t.Errorf("SettledPrefix = %d, want 2 (stops at open txn)", got)
	}
	if got := s.SettledPrefix(1); got != 1 {
		t.Errorf("SettledPrefix limited = %d", got)
	}
	tx.Commit()
	if got := s.SettledPrefix(s.Len()); got != 4 {
		t.Errorf("SettledPrefix after commit = %d, want 4", got)
	}

	// A pending (uncommitted) delete also blocks settling.
	d := m.Begin(mvcc.TxnSnapshot)
	s.At(0).Stamp.ClaimDelete(d.Marker())
	d.RecordDelete(s.At(0).Stamp)
	if got := s.SettledPrefix(s.Len()); got != 0 {
		t.Errorf("SettledPrefix with pending delete = %d, want 0", got)
	}
	d.Abort()
	if got := s.SettledPrefix(s.Len()); got != 4 {
		t.Errorf("SettledPrefix after abort = %d, want 4", got)
	}
}

func TestTruncatePrefixSharesRows(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	for i := int64(1); i <= 4; i++ {
		s.Append(committedRow(m, i, "x"))
	}
	ns := s.TruncatePrefix(3)
	if ns.Len() != 1 {
		t.Fatalf("new Len = %d", ns.Len())
	}
	if ns.At(0) != s.At(3) {
		t.Error("surviving row not shared")
	}
	// Key index rebuilt with new positions.
	if got := ns.LookupKey(types.Int(4)); len(got) != 1 || got[0] != 0 {
		t.Errorf("LookupKey on truncated store = %v", got)
	}
	if got := ns.LookupKey(types.Int(1)); got != nil {
		t.Errorf("migrated key still indexed: %v", got)
	}
	// Old generation unchanged (pinned readers).
	if s.Len() != 4 {
		t.Errorf("old generation mutated: %d", s.Len())
	}
}

func TestMemSizeGrowsPerRow(t *testing.T) {
	m := mvcc.NewManager()
	s := New(testSchema())
	base := s.MemSize()
	s.Append(committedRow(m, 1, "some name"))
	if s.MemSize() <= base {
		t.Error("MemSize did not grow on append")
	}
}

func TestNoKeySchema(t *testing.T) {
	schema := types.MustSchema([]types.Column{{Name: "v", Kind: types.KindInt64}}, -1)
	s := New(schema)
	m := mvcc.NewManager()
	tx := m.Begin(mvcc.TxnSnapshot)
	st := mvcc.NewStamp(tx.Marker())
	tx.RecordCreate(st)
	tx.Commit()
	s.Append(&Row{ID: 1, Values: []types.Value{types.Int(9)}, Stamp: st})
	if got := s.LookupKey(types.Int(9)); got != nil {
		t.Errorf("LookupKey without key column = %v", got)
	}
}
