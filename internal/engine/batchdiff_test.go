package engine

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/types"
)

// TestBatchRowDifferential runs seeded randomized queries — filters,
// projections, joins, aggregates, AsOf reads — through both the
// vectorized batch pipeline and the retained row-at-a-time reference,
// asserting multiset-identical results (same spirit as the torture
// package's oracle harness). Reproduce a failure with
// BATCHDIFF_SEED=<seed> go test ./internal/engine -run Differential.
func TestBatchRowDifferential(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("BATCHDIFF_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	rng := rand.New(rand.NewSource(seed))

	db, err := core.OpenDatabase(core.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable(core.TableConfig{
		Name: "d",
		Schema: types.MustSchema([]types.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "cat", Kind: types.KindString, Nullable: true},
			{Name: "qty", Kind: types.KindInt64},
			{Name: "price", Kind: types.KindFloat64, Nullable: true},
		}, 0),
		Strategy: core.MergePartial, ActiveMainMax: 60,
		Compress: true, CompactDicts: true, Historic: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	cats := []string{"alpha", "beta", "gamma", "delta", "eps"}
	nextID := int64(1)
	insert := func(n int) {
		tx := db.Begin(mvcc.TxnSnapshot)
		for i := 0; i < n; i++ {
			cat := types.Null
			if rng.Intn(10) > 0 {
				cat = types.Str(cats[rng.Intn(len(cats))])
			}
			price := types.Null
			if rng.Intn(10) > 0 {
				price = types.Float(float64(rng.Intn(10000)) / 100)
			}
			row := []types.Value{types.Int(nextID), cat, types.Int(int64(rng.Intn(500))), price}
			nextID++
			if _, err := tab.Insert(tx, row); err != nil {
				t.Fatal(err)
			}
		}
		db.Commit(tx)
	}
	del := func(n int) {
		tx := db.Begin(mvcc.TxnSnapshot)
		for i := 0; i < n; i++ {
			tab.DeleteKey(tx, types.Int(int64(rng.Intn(int(nextID)))+1))
		}
		db.Commit(tx)
	}
	snapAt := func() uint64 {
		v := tab.View(nil)
		defer v.Close()
		return v.Snapshot()
	}

	// Spread rows across every stage: split main chain, frozen and hot
	// L2 rows, L1 rows, with deletes in each region and AsOf snapshots
	// captured between phases.
	var asofs []uint64
	insert(120)
	del(10)
	tab.MergeL1()
	tab.MergeMain()
	asofs = append(asofs, snapAt())
	insert(80)
	del(15)
	tab.MergeL1()
	tab.MergeMain() // second chain part (ActiveMainMax 60)
	asofs = append(asofs, snapAt())
	insert(60)
	tab.MergeL1() // L2 generation
	del(10)
	asofs = append(asofs, snapAt())
	insert(30) // L1 rows
	del(5)

	randVal := func(col int) types.Value {
		switch col {
		case 0:
			return types.Int(int64(rng.Intn(int(nextID)) + 1))
		case 1:
			return types.Str(cats[rng.Intn(len(cats))])
		case 2:
			return types.Int(int64(rng.Intn(500)))
		default:
			return types.Float(float64(rng.Intn(10000)) / 100)
		}
	}
	ops := []expr.Op{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}
	var randPred func(depth int) expr.Predicate
	randPred = func(depth int) expr.Predicate {
		switch rng.Intn(7) {
		case 0:
			return nil
		case 1:
			col := rng.Intn(4)
			return expr.Cmp{Col: col, Op: ops[rng.Intn(len(ops))], Val: randVal(col)}
		case 2:
			col := rng.Intn(4)
			lo, hi := randVal(col), randVal(col)
			if types.Compare(hi, lo) < 0 {
				lo, hi = hi, lo
			}
			return expr.Between{Col: col, Lo: lo, Hi: hi, LoInc: rng.Intn(2) == 0, HiInc: rng.Intn(2) == 0}
		case 3:
			return expr.IsNull{Col: []int{1, 3}[rng.Intn(2)], Neg: rng.Intn(2) == 0}
		case 4:
			return expr.Like{Col: 1, Prefix: cats[rng.Intn(len(cats))][:1+rng.Intn(3)]}
		case 5:
			if depth > 1 {
				return nil
			}
			return expr.And{randOrCmp(rng, randPred, depth), randOrCmp(rng, randPred, depth)}
		default:
			if depth > 1 {
				return nil
			}
			return expr.Or{randOrCmp(rng, randPred, depth), randOrCmp(rng, randPred, depth)}
		}
	}

	render := func(rs [][]types.Value) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			s := ""
			for _, v := range r {
				s += v.String() + "|"
			}
			out[i] = s
		}
		sort.Strings(out)
		return out
	}
	check := func(q int, desc string, rowIt Iterator, batchIt BatchIterator) {
		t.Helper()
		want, err := Collect(rowIt)
		if err != nil {
			t.Fatalf("seed %d query %d (%s): row pipeline: %v", seed, q, desc, err)
		}
		got, err := CollectBatches(batchIt)
		if err != nil {
			t.Fatalf("seed %d query %d (%s): batch pipeline: %v", seed, q, desc, err)
		}
		g, w := render(got), render(want)
		if !reflect.DeepEqual(g, w) {
			for i := 0; i < len(g) || i < len(w); i++ {
				gl, wl := "<none>", "<none>"
				if i < len(g) {
					gl = g[i]
				}
				if i < len(w) {
					wl = w[i]
				}
				if gl != wl {
					t.Errorf("row %d: batch %q, row-path %q", i, gl, wl)
				}
			}
			t.Fatalf("seed %d query %d (%s): batch %d rows != row %d rows",
				seed, q, desc, len(got), len(want))
		}
	}

	const queries = 300
	for q := 0; q < queries; q++ {
		var asOf uint64
		if rng.Intn(3) == 0 {
			asOf = asofs[rng.Intn(len(asofs))]
		}
		pred := randPred(0)
		var cols []int
		if rng.Intn(2) == 0 {
			perm := rng.Perm(4)
			cols = perm[:1+rng.Intn(4)]
		}
		switch rng.Intn(4) {
		case 0: // plain scan: pushdown + projection + AsOf
			check(q, fmt.Sprintf("scan pred=%v cols=%v asof=%d", pred, cols, asOf),
				&TableScan{Table: tab, Pred: pred, Cols: cols, AsOf: asOf},
				&BatchTableScan{Table: tab, Pred: pred, Cols: cols, AsOf: asOf, BatchSize: 1 + rng.Intn(200)})
		case 1: // scan + post-filter operator (full-width rows)
			post := randPred(1)
			check(q, fmt.Sprintf("filter pred=%v post=%v", pred, post),
				&Filter{In: &TableScan{Table: tab, Pred: pred, AsOf: asOf}, Pred: post},
				&BatchFilter{In: &BatchTableScan{Table: tab, Pred: pred, AsOf: asOf}, Pred: post})
		case 2: // self equi-join on category
			check(q, fmt.Sprintf("join pred=%v", pred),
				&HashJoin{
					Left:    &TableScan{Table: tab, Pred: pred, AsOf: asOf},
					Right:   &TableScan{Table: tab, Pred: expr.Cmp{Col: 2, Op: expr.OpLt, Val: types.Int(50)}, AsOf: asOf},
					LeftCol: 1, RightCol: 1,
				},
				&BatchHashJoin{
					Left:    &BatchTableScan{Table: tab, Pred: pred, AsOf: asOf},
					Right:   &BatchTableScan{Table: tab, Pred: expr.Cmp{Col: 2, Op: expr.OpLt, Val: types.Int(50)}, AsOf: asOf},
					LeftCol: 1, RightCol: 1,
				})
		default: // grouped aggregation
			var groupBy []int
			if rng.Intn(4) > 0 {
				groupBy = []int{[]int{1, 2}[rng.Intn(2)]}
			}
			aggs := []Agg{{Func: AggCount}, {Func: AggSum, Col: 2},
				{Func: AggFunc(rng.Intn(5)), Col: []int{0, 2, 3}[rng.Intn(3)]}}
			check(q, fmt.Sprintf("agg pred=%v group=%v aggs=%v asof=%d", pred, groupBy, aggs, asOf),
				&HashAggregate{In: &TableScan{Table: tab, Pred: pred, AsOf: asOf}, GroupBy: groupBy, Aggs: aggs},
				&BatchHashAggregate{In: &BatchTableScan{Table: tab, Pred: pred, AsOf: asOf}, GroupBy: groupBy, Aggs: aggs})
		}
	}
}

// randOrCmp returns a sub-predicate for And/Or composition, replacing
// nil with a concrete comparison so conjunct counts stay stable.
func randOrCmp(rng *rand.Rand, gen func(int) expr.Predicate, depth int) expr.Predicate {
	if p := gen(depth + 1); p != nil {
		return p
	}
	return expr.Cmp{Col: 2, Op: expr.OpGe, Val: types.Int(int64(rng.Intn(500)))}
}
