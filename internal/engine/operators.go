package engine

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/types"
)

// Filter passes through rows satisfying the predicate (pipelined).
type Filter struct {
	In   Iterator
	Pred expr.Predicate
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.In.Open() }

// Next implements Iterator.
func (f *Filter) Next() ([]types.Value, bool, error) {
	for {
		row, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred == nil || f.Pred.Eval(row) {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.In.Close() }

// Project emits the selected columns in order (pipelined).
type Project struct {
	In   Iterator
	Cols []int
	buf  []types.Value
}

// Open implements Iterator.
func (p *Project) Open() error {
	p.buf = make([]types.Value, len(p.Cols))
	return p.In.Open()
}

// Next implements Iterator.
func (p *Project) Next() ([]types.Value, bool, error) {
	row, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, c := range p.Cols {
		p.buf[i] = row[c]
	}
	return p.buf, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.In.Close() }

// Limit passes through at most N rows.
type Limit struct {
	In Iterator
	N  int
	n  int
}

// Open implements Iterator.
func (l *Limit) Open() error { l.n = 0; return l.In.Open() }

// Next implements Iterator.
func (l *Limit) Next() ([]types.Value, bool, error) {
	if l.n >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return row, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.In.Close() }

// Union concatenates its inputs (schema-compatible by contract).
type Union struct {
	Ins []Iterator
	cur int
}

// Open implements Iterator.
func (u *Union) Open() error {
	u.cur = 0
	for i, in := range u.Ins {
		if err := in.Open(); err != nil {
			// Close the already-opened prefix so no child leaks its
			// resources (pinned views, latches) on a failed open.
			for _, opened := range u.Ins[:i] {
				opened.Close()
			}
			return err
		}
	}
	return nil
}

// Next implements Iterator.
func (u *Union) Next() ([]types.Value, bool, error) {
	for u.cur < len(u.Ins) {
		row, ok, err := u.Ins[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.cur++
	}
	return nil, false, nil
}

// Close implements Iterator.
func (u *Union) Close() error {
	var first error
	for _, in := range u.Ins {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// HashJoin is an equi-join: the right (build) side is hashed in Open,
// the left (probe) side streams. Output rows are left columns
// followed by right columns.
type HashJoin struct {
	Left, Right       Iterator
	LeftCol, RightCol int

	table map[types.Value][][]types.Value
	// probe state
	leftRow []types.Value
	matches [][]types.Value
	mi      int
	buf     []types.Value
}

// Open implements Iterator.
func (j *HashJoin) Open() error {
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.table = make(map[types.Value][][]types.Value)
	for {
		row, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := row[j.RightCol]
		if k.IsNull() {
			continue
		}
		j.table[k] = append(j.table[k], types.CloneRow(row))
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	j.leftRow, j.matches, j.mi = nil, nil, 0
	return j.Left.Open()
}

// Next implements Iterator.
func (j *HashJoin) Next() ([]types.Value, bool, error) {
	for {
		if j.mi < len(j.matches) {
			right := j.matches[j.mi]
			j.mi++
			j.buf = j.buf[:0]
			j.buf = append(j.buf, j.leftRow...)
			j.buf = append(j.buf, right...)
			return j.buf, true, nil
		}
		row, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := row[j.LeftCol]
		if k.IsNull() {
			continue
		}
		if m := j.table[k]; len(m) > 0 {
			j.leftRow = types.CloneRow(row)
			j.matches, j.mi = m, 0
		}
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error { return j.Left.Close() }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// AggCount counts rows (Col ignored).
	AggCount AggFunc = iota
	// AggSum sums a numeric column.
	AggSum
	// AggMin takes the minimum.
	AggMin
	// AggMax takes the maximum.
	AggMax
	// AggAvg averages a numeric column.
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "count"
	}
}

// Agg is one aggregate specification.
type Agg struct {
	Func AggFunc
	Col  int
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	isF   bool
	min   types.Value
	max   types.Value
}

func (s *aggState) add(f AggFunc, v types.Value) {
	if f == AggCount {
		s.count++
		return
	}
	if v.IsNull() {
		return
	}
	s.count++
	switch v.Kind {
	case types.KindFloat64:
		s.isF = true
		s.sumF += v.F
	default:
		s.sumI += v.I
	}
	// Order statistics are only maintained for the funcs that read
	// them; SUM/AVG/COUNT skip the per-row comparisons.
	switch f {
	case AggMin:
		if s.min.IsNull() || types.Less(v, s.min) {
			s.min = v
		}
	case AggMax:
		if s.max.IsNull() || types.Less(s.max, v) {
			s.max = v
		}
	}
}

// merge folds another accumulator into s (combining per-code-space
// partial aggregates).
func (s *aggState) merge(o *aggState) {
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	s.isF = s.isF || o.isF
	if !o.min.IsNull() && (s.min.IsNull() || types.Less(o.min, s.min)) {
		s.min = o.min
	}
	if !o.max.IsNull() && (s.max.IsNull() || types.Less(s.max, o.max)) {
		s.max = o.max
	}
}

func (s *aggState) result(f AggFunc) types.Value {
	switch f {
	case AggCount:
		return types.Int(s.count)
	case AggSum:
		if s.isF {
			return types.Float(s.sumF)
		}
		return types.Int(s.sumI)
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	case AggAvg:
		if s.count == 0 {
			return types.Null
		}
		if s.isF {
			return types.Float(s.sumF / float64(s.count))
		}
		return types.Float(float64(s.sumI) / float64(s.count))
	}
	return types.Null
}

// HashAggregate groups by the GroupBy columns and computes the Aggs.
// Output rows are group columns followed by aggregate results; with
// no GroupBy a single global row is produced. A blocking operator:
// the input is consumed in Open.
type HashAggregate struct {
	In      Iterator
	GroupBy []int
	Aggs    []Agg

	out *SliceSource
}

// Open implements Iterator.
func (a *HashAggregate) Open() error {
	if err := a.In.Open(); err != nil {
		return err
	}
	acc := newGroupAcc(len(a.GroupBy), a.Aggs)
	for {
		row, ok, err := a.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		acc.add(row, a.GroupBy, a.Aggs)
	}
	if err := a.In.Close(); err != nil {
		return err
	}
	a.out = NewSliceSource(acc.rows(a.GroupBy, a.Aggs))
	return a.out.Open()
}

// Next implements Iterator.
func (a *HashAggregate) Next() ([]types.Value, bool, error) {
	if a.out == nil {
		return nil, false, ErrNotOpen
	}
	return a.out.Next()
}

// Close implements Iterator.
func (a *HashAggregate) Close() error {
	if a.out != nil {
		return a.out.Close()
	}
	return nil
}

func rowsEqual(a, b []types.Value) bool {
	for i := range a {
		an, bn := a[i].IsNull(), b[i].IsNull()
		if an != bn {
			return false
		}
		if !an && !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// SortSpec orders by a column.
type SortSpec struct {
	Col  int
	Desc bool
}

// Sort is a blocking order-by operator.
type Sort struct {
	In   Iterator
	Keys []SortSpec

	out *SliceSource
}

// Open implements Iterator.
func (s *Sort) Open() error {
	rows, err := Collect(s.In)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range s.Keys {
			c := types.Compare(rows[a][k.Col], rows[b][k.Col])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.out = NewSliceSource(rows)
	return s.out.Open()
}

// Next implements Iterator.
func (s *Sort) Next() ([]types.Value, bool, error) {
	if s.out == nil {
		return nil, false, ErrNotOpen
	}
	return s.out.Next()
}

// Close implements Iterator.
func (s *Sort) Close() error {
	if s.out != nil {
		return s.out.Close()
	}
	return nil
}

// String renders an Agg for plans.
func (a Agg) String() string { return fmt.Sprintf("%v(col%d)", a.Func, a.Col) }
