package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/types"
	"repro/internal/vec"
)

// BatchIterator is the vectorized Open-Next-Close protocol: Next
// returns the next column batch, nil at end of stream. A returned
// batch is owned by the producer and only valid until the next Next
// call; blocking consumers must copy what they keep.
type BatchIterator interface {
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next batch; nil reports end of stream.
	Next() (*vec.Batch, error)
	// Close releases resources (and closes children).
	Close() error
}

// BatchTableScan streams a unified table as column batches with
// predicate pushdown onto dictionary codes — the vectorized
// replacement for TableScan. Unlike TableScan it does NOT
// materialize: the statement view stays pinned from Open to Close
// (the paper's pipelined access mode, §3.1), so the scan is O(batch)
// in memory regardless of result size, and limit pushdown stops the
// scan early.
type BatchTableScan struct {
	Table *core.Table
	Txn   *mvcc.Txn
	Pred  expr.Predicate
	// Cols, when non-nil, projects the scan to the listed columns (in
	// that order). Pred references the table's original ordinals.
	Cols []int
	// AsOf, when non-zero, reads at an explicit snapshot (time
	// travel); Txn is ignored then.
	AsOf uint64
	// BatchSize overrides the table's configured batch row capacity
	// when positive.
	BatchSize int
	// Ctx, when non-nil, cancels the scan at batch granularity: Next
	// returns ctx.Err() once the context is done.
	Ctx context.Context

	view *core.View
	cur  *core.BatchScan
}

// Open implements BatchIterator.
func (s *BatchTableScan) Open() error {
	if s.Ctx != nil {
		if err := s.Ctx.Err(); err != nil {
			return err
		}
	}
	if s.AsOf != 0 {
		s.view = s.Table.AsOf(s.AsOf)
	} else {
		s.view = s.Table.View(s.Txn)
	}
	s.cur = s.view.NewBatchScanCtx(s.Ctx, s.Cols, s.Pred, s.BatchSize)
	return nil
}

// Next implements BatchIterator.
func (s *BatchTableScan) Next() (*vec.Batch, error) {
	if s.cur == nil {
		return nil, ErrNotOpen
	}
	b := s.cur.Next()
	if b == nil {
		return nil, s.cur.Err()
	}
	return b, nil
}

// Close implements BatchIterator.
func (s *BatchTableScan) Close() error {
	if s.view != nil {
		s.view.Close()
		s.view, s.cur = nil, nil
	}
	return nil
}

// BatchFilter refines each batch's selection vector with a predicate;
// vectors are never copied. Row slices handed to Pred.Eval follow the
// input batch's column order, so Pred must reference batch-local
// ordinals.
type BatchFilter struct {
	In   BatchIterator
	Pred expr.Predicate

	rowBuf []types.Value
}

// Open implements BatchIterator.
func (f *BatchFilter) Open() error { return f.In.Open() }

// Next implements BatchIterator.
func (f *BatchFilter) Next() (*vec.Batch, error) {
	for {
		b, err := f.In.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if f.Pred != nil {
			if cap(f.rowBuf) < b.NumCols() {
				f.rowBuf = make([]types.Value, b.NumCols())
			}
			buf := f.rowBuf[:b.NumCols()]
			b.Select(func(pos int) bool {
				for i, c := range b.Cols {
					buf[i] = c.Value(pos)
				}
				return f.Pred.Eval(buf)
			})
		}
		if b.Rows() > 0 {
			return b, nil
		}
	}
}

// Close implements BatchIterator.
func (f *BatchFilter) Close() error { return f.In.Close() }

// BatchProject prunes each batch to the listed columns — a header
// rewrite sharing the input's vectors, the "free" projection of
// columnar layout.
type BatchProject struct {
	In   BatchIterator
	Cols []int
}

// Open implements BatchIterator.
func (p *BatchProject) Open() error { return p.In.Open() }

// Next implements BatchIterator.
func (p *BatchProject) Next() (*vec.Batch, error) {
	b, err := p.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	return b.Project(p.Cols), nil
}

// Close implements BatchIterator.
func (p *BatchProject) Close() error { return p.In.Close() }

// BatchLimit truncates the stream after N rows. Once satisfied it
// stops pulling from its input entirely — with a streaming source
// like BatchTableScan this is limit pushdown: the scan never decodes
// past the last needed batch.
type BatchLimit struct {
	In BatchIterator
	N  int
	n  int
}

// Open implements BatchIterator.
func (l *BatchLimit) Open() error { l.n = 0; return l.In.Open() }

// Next implements BatchIterator.
func (l *BatchLimit) Next() (*vec.Batch, error) {
	if l.n >= l.N {
		return nil, nil
	}
	b, err := l.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if rem := l.N - l.n; b.Rows() > rem {
		b.Truncate(rem)
	}
	l.n += b.Rows()
	return b, nil
}

// Close implements BatchIterator.
func (l *BatchLimit) Close() error { return l.In.Close() }

// BatchHashJoin is the vectorized equi-join: the right (build) side
// is drained into a hash table in Open, then each probe batch yields
// one output batch. Output columns are left columns followed by right
// columns.
type BatchHashJoin struct {
	Left, Right       BatchIterator
	LeftCol, RightCol int

	table map[types.Value][][]types.Value
	out   *vec.Batch
	lbuf  []types.Value
}

// Open implements BatchIterator.
func (j *BatchHashJoin) Open() error {
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.table = make(map[types.Value][][]types.Value)
	for {
		b, err := j.Right.Next()
		if err != nil {
			j.Right.Close()
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Rows(); i++ {
			row := b.RowAt(i, nil)
			k := row[j.RightCol]
			if k.IsNull() {
				continue
			}
			j.table[k] = append(j.table[k], row)
		}
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.out = nil
	j.lbuf = nil
	return nil
}

// Next implements BatchIterator.
func (j *BatchHashJoin) Next() (*vec.Batch, error) {
	for {
		b, err := j.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if j.out == nil {
			// Output width is known once the first probe batch arrives;
			// kinds are adopted from the appended values.
			var rightCols int
			for _, m := range j.table {
				rightCols = len(m[0])
				break
			}
			j.out = vec.New(make([]types.Kind, b.NumCols()+rightCols))
		}
		j.out.Reset()
		for i := 0; i < b.Rows(); i++ {
			j.lbuf = b.RowAt(i, j.lbuf)
			k := j.lbuf[j.LeftCol]
			if k.IsNull() {
				continue
			}
			for _, right := range j.table[k] {
				ci := 0
				for _, v := range j.lbuf {
					j.out.Cols[ci].Append(v)
					ci++
				}
				for _, v := range right {
					j.out.Cols[ci].Append(v)
					ci++
				}
				j.out.SetLen(j.out.Len() + 1)
			}
		}
		if j.out.Len() > 0 {
			return j.out, nil
		}
	}
}

// Close implements BatchIterator.
func (j *BatchHashJoin) Close() error { return j.Left.Close() }

// BatchHashAggregate groups batches by the GroupBy columns and
// computes the Aggs; output rows are group columns followed by
// aggregate results (one global row with no GroupBy). Blocking: the
// input is drained in Open into the shared grouping accumulator.
type BatchHashAggregate struct {
	In      BatchIterator
	GroupBy []int
	Aggs    []Agg

	out  *vec.Batch
	done bool
}

// Open implements BatchIterator.
func (a *BatchHashAggregate) Open() error {
	if err := a.In.Open(); err != nil {
		return err
	}
	acc := newGroupAcc(len(a.GroupBy), a.Aggs)
	// Box only the columns the aggregation reads, not whole rows.
	cols, gIdx, aIdx := neededColumns(a.GroupBy, a.Aggs)
	vals := make([]types.Value, len(cols))
	for {
		b, err := a.In.Next()
		if err != nil {
			a.In.Close()
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Rows(); i++ {
			p := i
			if b.Sel != nil {
				p = int(b.Sel[i])
			}
			for j, c := range cols {
				vals[j] = b.Cols[c].Value(p)
			}
			acc.addProjected(vals, gIdx, aIdx, a.Aggs)
		}
	}
	if err := a.In.Close(); err != nil {
		return err
	}
	a.out = vec.New(make([]types.Kind, len(a.GroupBy)+len(a.Aggs)))
	for _, row := range acc.rows(a.GroupBy, a.Aggs) {
		a.out.AppendRow(row)
	}
	a.done = false
	return nil
}

// Next implements BatchIterator.
func (a *BatchHashAggregate) Next() (*vec.Batch, error) {
	if a.out == nil {
		return nil, ErrNotOpen
	}
	if a.done {
		return nil, nil
	}
	a.done = true
	return a.out, nil
}

// Close implements BatchIterator.
func (a *BatchHashAggregate) Close() error { return nil }

// BatchToRows adapts a batch stream to the row-at-a-time Iterator
// protocol — the compatibility bridge that lets existing ONC
// operators consume the vectorized scan.
type BatchToRows struct {
	In BatchIterator

	b   *vec.Batch
	pos int
	buf []types.Value
}

// Open implements Iterator.
func (r *BatchToRows) Open() error {
	r.b, r.pos = nil, 0
	return r.In.Open()
}

// Next implements Iterator.
func (r *BatchToRows) Next() ([]types.Value, bool, error) {
	for {
		if r.b != nil && r.pos < r.b.Rows() {
			r.buf = r.b.RowAt(r.pos, r.buf)
			r.pos++
			return r.buf, true, nil
		}
		b, err := r.In.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		r.b, r.pos = b, 0
	}
}

// Close implements Iterator.
func (r *BatchToRows) Close() error { return r.In.Close() }

// RowsToBatches adapts a row iterator to the batch protocol,
// accumulating BatchSize rows per batch (vec.DefaultBatchSize when
// unset). Kinds are adopted from the first appended values.
type RowsToBatches struct {
	In        Iterator
	BatchSize int

	out *vec.Batch
	eos bool
}

// Open implements BatchIterator.
func (r *RowsToBatches) Open() error {
	r.out, r.eos = nil, false
	return r.In.Open()
}

// Next implements BatchIterator.
func (r *RowsToBatches) Next() (*vec.Batch, error) {
	if r.eos {
		return nil, nil
	}
	size := r.BatchSize
	if size <= 0 {
		size = vec.DefaultBatchSize
	}
	if r.out != nil {
		r.out.Reset()
	}
	n := 0
	for n < size {
		row, ok, err := r.In.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			r.eos = true
			break
		}
		if r.out == nil {
			r.out = vec.New(make([]types.Kind, len(row)))
		}
		r.out.AppendRow(row)
		n++
	}
	if n == 0 {
		return nil, nil
	}
	return r.out, nil
}

// Close implements BatchIterator.
func (r *RowsToBatches) Close() error { return r.In.Close() }

// CollectBatches drains a batch iterator into materialized rows,
// handling Open/Close.
func CollectBatches(it BatchIterator) ([][]types.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out [][]types.Value
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.Materialize()...)
	}
}
