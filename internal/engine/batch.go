package engine

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/types"
	"repro/internal/vec"
)

// BatchIterator is the vectorized Open-Next-Close protocol: Next
// returns the next column batch, nil at end of stream. A returned
// batch is owned by the producer and only valid until the next Next
// call; blocking consumers must copy what they keep. Close is
// idempotent on every operator in this package and safe to call on an
// operator whose Open failed (or was never called).
type BatchIterator interface {
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next batch; nil reports end of stream.
	Next() (*vec.Batch, error)
	// Close releases resources (and closes children).
	Close() error
}

// BatchTableScan streams a unified table as column batches with
// predicate pushdown onto dictionary codes — the vectorized
// replacement for TableScan. Unlike TableScan it does NOT
// materialize: the statement view stays pinned from Open to Close
// (the paper's pipelined access mode, §3.1), so the scan is O(batch)
// in memory regardless of result size, and limit pushdown stops the
// scan early.
type BatchTableScan struct {
	Table *core.Table
	Txn   *mvcc.Txn
	Pred  expr.Predicate
	// Cols, when non-nil, projects the scan to the listed columns (in
	// that order). Pred references the table's original ordinals.
	Cols []int
	// AsOf, when non-zero, reads at an explicit snapshot (time
	// travel); Txn is ignored then.
	AsOf uint64
	// BatchSize overrides the table's configured batch row capacity
	// when positive.
	BatchSize int
	// Ctx, when non-nil, cancels the scan at batch granularity: Next
	// returns ctx.Err() once the context is done.
	Ctx context.Context
	// Unordered opts into the morsel-parallel scan: batches arrive in
	// worker completion order instead of life-cycle stitch order.
	// Order-insensitive consumers (aggregation, join builds, COUNT)
	// set it; the row SET is identical for every worker count.
	Unordered bool
	// Workers overrides the table's ScanWorkers resolution when
	// positive. The parallel path only engages when Unordered is set
	// and the resolved count exceeds 1.
	Workers int
	// Stats, when non-nil, collects this scan's actuals (EXPLAIN
	// ANALYZE); the cursor-level totals are harvested at Close, so a
	// cancelled statement still reports the rows it got through.
	Stats *OpStats

	view *core.View
	cur  *core.BatchScan
	pcur *core.ParallelBatchScan
}

// resolvedWorkers is the scan's effective worker budget: the explicit
// override, else the table's ScanWorkers resolution.
func (s *BatchTableScan) resolvedWorkers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	if s.Table == nil {
		return 1
	}
	return s.Table.ScanWorkers()
}

// openView pins the statement view (shared with the operators that
// drain a table scan through the parallel machinery directly).
func (s *BatchTableScan) openView() *core.View {
	if s.AsOf != 0 {
		return s.Table.AsOf(s.AsOf)
	}
	return s.Table.View(s.Txn)
}

// Open implements BatchIterator.
func (s *BatchTableScan) Open() error {
	if s.Ctx != nil {
		if err := s.Ctx.Err(); err != nil {
			return err
		}
	}
	s.view = s.openView()
	if s.Unordered && s.resolvedWorkers() > 1 {
		s.pcur = s.view.NewParallelBatchScan(s.Ctx, s.Cols, s.Pred, s.BatchSize, s.resolvedWorkers())
	} else {
		s.cur = s.view.NewBatchScanCtx(s.Ctx, s.Cols, s.Pred, s.BatchSize)
	}
	return nil
}

// Next implements BatchIterator.
func (s *BatchTableScan) Next() (*vec.Batch, error) {
	if s.Stats == nil {
		return s.next()
	}
	t0 := time.Now()
	b, err := s.next()
	s.Stats.AddWall(time.Since(t0))
	return b, err
}

func (s *BatchTableScan) next() (*vec.Batch, error) {
	if s.pcur != nil {
		b := s.pcur.Next()
		if b == nil {
			return nil, s.pcur.Err()
		}
		return b, nil
	}
	if s.cur == nil {
		return nil, ErrNotOpen
	}
	b := s.cur.Next()
	if b == nil {
		return nil, s.cur.Err()
	}
	return b, nil
}

// Close implements BatchIterator. Idempotent. When Stats is set, the
// cursor totals (rows, batches, residual drops, decode-cache hits,
// parallel shape) are harvested here — Close runs on error paths too,
// so a killed or timed-out statement keeps its partial actuals.
func (s *BatchTableScan) Close() error {
	if s.pcur != nil {
		s.pcur.Close()
		if s.Stats != nil {
			s.Stats.SetScan(s.pcur.Stats())
		}
		s.pcur = nil
	}
	if s.view != nil {
		if s.cur != nil && s.Stats != nil {
			s.Stats.SetScan(s.cur.Stats())
		}
		s.view.Close()
		s.view, s.cur = nil, nil
	}
	return nil
}

// BatchFilter refines each batch's selection vector with a predicate;
// vectors are never copied. Row slices handed to Pred.Eval follow the
// input batch's column order, so Pred must reference batch-local
// ordinals.
type BatchFilter struct {
	In   BatchIterator
	Pred expr.Predicate
	// Stats, when non-nil, collects the filter's actuals.
	Stats *OpStats

	rowBuf []types.Value
	open   bool
}

// Open implements BatchIterator.
func (f *BatchFilter) Open() error {
	if err := f.In.Open(); err != nil {
		return err
	}
	f.open = true
	return nil
}

// Next implements BatchIterator.
func (f *BatchFilter) Next() (*vec.Batch, error) {
	var t0 time.Time
	if f.Stats != nil {
		t0 = time.Now()
	}
	for {
		b, err := f.In.Next()
		if err != nil || b == nil {
			if f.Stats != nil {
				f.Stats.AddWall(time.Since(t0))
			}
			return nil, err
		}
		if f.Pred != nil {
			if cap(f.rowBuf) < b.NumCols() {
				f.rowBuf = make([]types.Value, b.NumCols())
			}
			buf := f.rowBuf[:b.NumCols()]
			b.Select(func(pos int) bool {
				for i, c := range b.Cols {
					buf[i] = c.Value(pos)
				}
				return f.Pred.Eval(buf)
			})
		}
		if b.Rows() > 0 {
			if f.Stats != nil {
				f.Stats.AddOut(b.Rows())
				f.Stats.AddWall(time.Since(t0))
			}
			return b, nil
		}
	}
}

// Close implements BatchIterator. Idempotent.
func (f *BatchFilter) Close() error {
	if !f.open {
		return nil
	}
	f.open = false
	return f.In.Close()
}

// BatchProject prunes each batch to the listed columns — a header
// rewrite sharing the input's vectors, the "free" projection of
// columnar layout.
type BatchProject struct {
	In   BatchIterator
	Cols []int
	// Stats, when non-nil, collects the projection's actuals.
	Stats *OpStats

	open bool
}

// Open implements BatchIterator.
func (p *BatchProject) Open() error {
	if err := p.In.Open(); err != nil {
		return err
	}
	p.open = true
	return nil
}

// Next implements BatchIterator.
func (p *BatchProject) Next() (*vec.Batch, error) {
	b, err := p.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	p.Stats.AddOut(b.Rows())
	return b.Project(p.Cols), nil
}

// Close implements BatchIterator. Idempotent.
func (p *BatchProject) Close() error {
	if !p.open {
		return nil
	}
	p.open = false
	return p.In.Close()
}

// BatchLimit truncates the stream after N rows. Once satisfied it
// stops pulling from its input entirely — with a streaming source
// like BatchTableScan this is limit pushdown: the scan never decodes
// past the last needed batch.
type BatchLimit struct {
	In BatchIterator
	N  int
	// Stats, when non-nil, collects the limit's actuals.
	Stats *OpStats

	n    int
	sel  []int32
	out  *vec.Batch
	open bool
}

// Open implements BatchIterator.
func (l *BatchLimit) Open() error {
	l.n = 0
	if err := l.In.Open(); err != nil {
		return err
	}
	l.open = true
	return nil
}

// Next implements BatchIterator.
func (l *BatchLimit) Next() (*vec.Batch, error) {
	if l.n >= l.N {
		return nil, nil
	}
	b, err := l.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if rem := l.N - l.n; b.Rows() > rem {
		// Truncate through a limit-owned batch header and selection
		// vector sharing the producer's column vectors. The input batch
		// belongs to the producer and is reused on its next fill:
		// mutating it in place (b.Truncate) would plant a selection the
		// producer never cleans up, silently dropping rows from any
		// later fill of the same batch object.
		l.sel = l.sel[:0]
		if b.Sel != nil {
			l.sel = append(l.sel, b.Sel[:rem]...)
		} else {
			for i := 0; i < rem; i++ {
				l.sel = append(l.sel, int32(i))
			}
		}
		if l.out == nil {
			l.out = &vec.Batch{}
		}
		l.out.Cols = b.Cols
		l.out.Sel = l.sel
		l.out.SetLen(b.Len())
		b = l.out
	}
	l.n += b.Rows()
	l.Stats.AddOut(b.Rows())
	return b, nil
}

// Close implements BatchIterator. Idempotent.
func (l *BatchLimit) Close() error {
	if !l.open {
		return nil
	}
	l.open = false
	return l.In.Close()
}

// BatchHashJoin is the vectorized equi-join: the right (build) side
// is drained into a hash table in Open, then each probe batch yields
// one output batch. Output columns are left columns followed by right
// columns. When the build side is an exclusively-owned table scan and
// the table resolves more than one scan worker, the build runs
// morsel-parallel: workers partition build rows by key hash into
// per-worker per-partition segments tagged with their morsel index,
// and the partition tables are assembled in parallel by concatenating
// segments in morsel order — the exact insertion order of the
// sequential build, so results are identical for every worker count.
type BatchHashJoin struct {
	Left, Right       BatchIterator
	LeftCol, RightCol int
	// Budget, when non-nil, charges the materialized build side
	// against the statement's memory budget; a blown budget fails
	// Open with budget.ErrBudgetExceeded instead of OOMing. Falls
	// back to the meter carried by the build-side scan's context.
	Budget *budget.Meter
	// Stats, when non-nil, collects the join's actuals (build wall
	// time lands in AddWall at Open; probe time accumulates in Next).
	Stats *OpStats

	table      map[types.Value][][]types.Value
	parts      []map[types.Value][][]types.Value
	rightWidth int
	out        *vec.Batch
	lbuf       []types.Value
	leftOpen   bool
	rightOpen  bool
}

// joinBuildPartitions is the partition fan-out of the parallel build:
// enough to keep a worker pool busy during table assembly without
// fragmenting small build sides.
const joinBuildPartitions = 16

// buildSeg is one worker's build rows for one (morsel, partition)
// cell, in arrival order.
type buildSeg struct {
	morsel int
	rows   [][]types.Value
}

// meter resolves the effective build budget: the explicit field, else
// whatever meter rides the build-side scan's context.
func (j *BatchHashJoin) meter() *budget.Meter {
	if j.Budget != nil {
		return j.Budget
	}
	if rs, ok := j.Right.(*BatchTableScan); ok {
		return budget.FromContext(rs.Ctx)
	}
	return nil
}

// buildRowBytes is the per-row hash-table overhead beyond the values:
// the rows slice slot and amortized map bucket share.
const buildRowBytes = 48

// Open implements BatchIterator.
func (j *BatchHashJoin) Open() error {
	var t0 time.Time
	if j.Stats != nil {
		t0 = time.Now()
		defer func() { j.Stats.AddWall(time.Since(t0)) }()
	}
	j.table, j.parts, j.rightWidth = nil, nil, 0
	j.out, j.lbuf = nil, nil
	if rs, ok := j.Right.(*BatchTableScan); ok && rs.Table != nil && rs.resolvedWorkers() > 1 {
		if err := j.buildParallel(rs); err != nil {
			return err
		}
	} else if err := j.buildSequential(); err != nil {
		return err
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.leftOpen = true
	return nil
}

// buildSequential drains Right into the hash table on the calling
// goroutine, closing Right on every path.
func (j *BatchHashJoin) buildSequential() error {
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.rightOpen = true
	j.table = make(map[types.Value][][]types.Value)
	meter := j.meter()
	for {
		b, err := j.Right.Next()
		if err != nil {
			j.closeRight()
			return err
		}
		if b == nil {
			break
		}
		var bytes int64
		for i := 0; i < b.Rows(); i++ {
			row := b.RowAt(i, nil)
			j.rightWidth = len(row)
			k := row[j.RightCol]
			if k.IsNull() {
				continue
			}
			j.table[k] = append(j.table[k], row)
			if meter != nil {
				bytes += buildRowBytes + budget.RowBytes(row)
			}
		}
		// One reservation per batch keeps the accounting off the
		// per-row hot path.
		if err := meter.Reserve(bytes); err != nil {
			j.closeRight()
			return err
		}
		j.Stats.AddBudget(bytes)
	}
	return j.closeRight()
}

// buildParallel drains the build-side table scan through the
// morsel-parallel machinery into partitioned hash tables.
func (j *BatchHashJoin) buildParallel(rs *BatchTableScan) error {
	if rs.Ctx != nil {
		if err := rs.Ctx.Err(); err != nil {
			return err
		}
	}
	view := rs.openView()
	defer view.Close()

	workers := rs.resolvedWorkers()
	// segs[w][p] collects worker w's rows for partition p; workers run
	// their callbacks serially, so no locking inside a row.
	segs := make([][][]buildSeg, workers)
	for w := range segs {
		segs[w] = make([][]buildSeg, joinBuildPartitions)
	}
	var width int
	var widthMu sync.Mutex
	meter := j.meter()
	var budgetErr error
	var budgetMu sync.Mutex
	ss, err := view.ScanBatchesParallelStats(rs.Ctx, rs.Cols, rs.Pred, rs.BatchSize, workers,
		func(w, mi int, b *vec.Batch) bool {
			rows := b.Materialize()
			if len(rows) > 0 {
				widthMu.Lock()
				width = len(rows[0])
				widthMu.Unlock()
			}
			var bytes int64
			for _, row := range rows {
				k := row[j.RightCol]
				if k.IsNull() {
					continue
				}
				p := int(types.Hash(k) % joinBuildPartitions)
				cell := segs[w][p]
				if len(cell) == 0 || cell[len(cell)-1].morsel != mi {
					cell = append(cell, buildSeg{morsel: mi})
				}
				cell[len(cell)-1].rows = append(cell[len(cell)-1].rows, row)
				segs[w][p] = cell
				if meter != nil {
					bytes += buildRowBytes + budget.RowBytes(row)
				}
			}
			if err := meter.Reserve(bytes); err != nil {
				budgetMu.Lock()
				if budgetErr == nil {
					budgetErr = err
				}
				budgetMu.Unlock()
				return false
			}
			j.Stats.AddBudget(bytes)
			return true
		})
	// The fused build bypasses the scan operator, so its stats node —
	// when the plan carries one — is fed from the scan-level actuals
	// here, on success and error paths alike.
	if rs.Stats != nil {
		rs.Stats.SetScan(ss)
	}
	if err != nil {
		return err
	}
	if budgetErr != nil {
		return budgetErr
	}
	j.rightWidth = width

	// Assemble each partition's table in parallel: gather the
	// partition's segments from every worker, order them by morsel
	// index, and insert rows in that order — per key, the sequential
	// build's insertion order.
	j.parts = make([]map[types.Value][][]types.Value, joinBuildPartitions)
	var wg sync.WaitGroup
	for p := 0; p < joinBuildPartitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var all []buildSeg
			for w := range segs {
				all = append(all, segs[w][p]...)
			}
			sort.Slice(all, func(a, b int) bool { return all[a].morsel < all[b].morsel })
			m := make(map[types.Value][][]types.Value)
			for _, seg := range all {
				for _, row := range seg.rows {
					k := row[j.RightCol]
					m[k] = append(m[k], row)
				}
			}
			j.parts[p] = m
		}(p)
	}
	wg.Wait()
	return nil
}

// closeRight closes the build side exactly once.
func (j *BatchHashJoin) closeRight() error {
	if !j.rightOpen {
		return nil
	}
	j.rightOpen = false
	return j.Right.Close()
}

// lookup returns the build rows matching k, from whichever table
// shape the build produced.
func (j *BatchHashJoin) lookup(k types.Value) [][]types.Value {
	if j.parts != nil {
		return j.parts[int(types.Hash(k)%joinBuildPartitions)][k]
	}
	return j.table[k]
}

// Next implements BatchIterator.
func (j *BatchHashJoin) Next() (*vec.Batch, error) {
	if !j.leftOpen {
		return nil, ErrNotOpen
	}
	var t0 time.Time
	if j.Stats != nil {
		t0 = time.Now()
		defer func() { j.Stats.AddWall(time.Since(t0)) }()
	}
	for {
		b, err := j.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if j.out == nil {
			// Output width is known once the first probe batch arrives;
			// kinds are adopted from the appended values.
			j.out = vec.New(make([]types.Kind, b.NumCols()+j.rightWidth))
		}
		j.out.Reset()
		for i := 0; i < b.Rows(); i++ {
			j.lbuf = b.RowAt(i, j.lbuf)
			k := j.lbuf[j.LeftCol]
			if k.IsNull() {
				continue
			}
			for _, right := range j.lookup(k) {
				ci := 0
				for _, v := range j.lbuf {
					j.out.Cols[ci].Append(v)
					ci++
				}
				for _, v := range right {
					j.out.Cols[ci].Append(v)
					ci++
				}
				j.out.SetLen(j.out.Len() + 1)
			}
		}
		if j.out.Len() > 0 {
			j.Stats.AddOut(j.out.Len())
			return j.out, nil
		}
	}
}

// Close implements BatchIterator: both children are closed exactly
// once, whichever of them is still open. Idempotent, and safe when
// Open failed partway.
func (j *BatchHashJoin) Close() error {
	err := j.closeRight()
	if j.leftOpen {
		j.leftOpen = false
		err = errors.Join(err, j.Left.Close())
	}
	return err
}

// BatchHashAggregate groups batches by the GroupBy columns and
// computes the Aggs; output rows are group columns followed by
// aggregate results (one global row with no GroupBy). Blocking: the
// input is drained in Open into the shared grouping accumulator.
//
// When the input is an exclusively-owned table scan and the table
// resolves more than one scan worker, the drain runs morsel-parallel:
// each worker accumulates into a private partial tagged with each
// group's first-seen (morsel, row) position, and the partials merge
// in tag order — reproducing the sequential first-seen group order,
// so results are identical for every worker count (floating-point
// sums may differ in the last ulp from reassociation).
type BatchHashAggregate struct {
	In      BatchIterator
	GroupBy []int
	Aggs    []Agg
	// Budget, when non-nil, charges group creation against the
	// statement's memory budget; a blown budget fails Open with
	// budget.ErrBudgetExceeded. Falls back to the meter carried by
	// the input scan's context.
	Budget *budget.Meter
	// Stats, when non-nil, collects the aggregate's actuals.
	Stats *OpStats

	out    *vec.Batch
	done   bool
	inOpen bool
}

// meter resolves the effective accumulator budget.
func (a *BatchHashAggregate) meter() *budget.Meter {
	if a.Budget != nil {
		return a.Budget
	}
	if ts, ok := a.In.(*BatchTableScan); ok {
		return budget.FromContext(ts.Ctx)
	}
	return nil
}

// Open implements BatchIterator.
func (a *BatchHashAggregate) Open() error {
	var t0 time.Time
	if a.Stats != nil {
		t0 = time.Now()
		defer func() { a.Stats.AddWall(time.Since(t0)) }()
	}
	a.out, a.done = nil, false
	if ts, ok := a.In.(*BatchTableScan); ok && ts.Table != nil && ts.resolvedWorkers() > 1 {
		return a.openParallel(ts)
	}
	if err := a.In.Open(); err != nil {
		return err
	}
	a.inOpen = true
	acc := newGroupAcc(len(a.GroupBy), a.Aggs)
	acc.meter = a.meter()
	// Box only the columns the aggregation reads, not whole rows.
	cols, gIdx, aIdx := neededColumns(a.GroupBy, a.Aggs)
	vals := make([]types.Value, len(cols))
	for {
		b, err := a.In.Next()
		if err != nil {
			a.closeIn()
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Rows(); i++ {
			p := i
			if b.Sel != nil {
				p = int(b.Sel[i])
			}
			for j, c := range cols {
				vals[j] = b.Cols[c].Value(p)
			}
			acc.addProjected(vals, gIdx, aIdx, a.Aggs)
		}
		if acc.err != nil {
			a.closeIn()
			return acc.err
		}
	}
	if err := a.closeIn(); err != nil {
		return err
	}
	a.emit(acc)
	return nil
}

// openParallel drains the input table scan through the
// morsel-parallel machinery into per-worker partial accumulators.
func (a *BatchHashAggregate) openParallel(ts *BatchTableScan) error {
	if ts.Ctx != nil {
		if err := ts.Ctx.Err(); err != nil {
			return err
		}
	}
	view := ts.openView()
	defer view.Close()

	workers := ts.resolvedWorkers()
	accs := make([]*groupAcc, workers)
	bufs := make([][]types.Value, workers)
	// Per-worker morsel cursor for first-seen tags: a morsel is
	// processed by exactly one worker, batch by batch in row order, so
	// (morsel, row-within-morsel) totally orders rows exactly as the
	// sequential scan visits them.
	curMorsel := make([]int, workers)
	seq := make([]int, workers)
	meter := a.meter()
	for w := range accs {
		accs[w] = newGroupAcc(len(a.GroupBy), a.Aggs)
		accs[w].meter = meter
		curMorsel[w] = -1
	}
	ss, err := view.ScanBatchesParallelStats(ts.Ctx, ts.Cols, ts.Pred, ts.BatchSize, workers,
		func(w, mi int, b *vec.Batch) bool {
			if curMorsel[w] != mi {
				curMorsel[w], seq[w] = mi, 0
			}
			for i := 0; i < b.Rows(); i++ {
				bufs[w] = b.RowAt(i, bufs[w])
				accs[w].addTagged(bufs[w], a.GroupBy, a.Aggs, mi, seq[w])
				seq[w]++
			}
			return accs[w].err == nil
		})
	// The fused drain bypasses the scan operator; feed the scan node's
	// stats — when the plan carries one — from the scan-level actuals,
	// on success and error paths alike.
	if ts.Stats != nil {
		ts.Stats.SetScan(ss)
	}
	if err != nil {
		return err
	}
	for _, acc := range accs {
		if acc.err != nil {
			return acc.err
		}
	}
	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.mergeFrom(acc, a.Aggs)
	}
	if merged.err != nil {
		return merged.err
	}
	merged.sortByTag()
	for _, acc := range accs[1:] {
		merged.reserved += acc.reserved
	}
	a.emit(merged)
	return nil
}

// emit materializes the accumulator into the single output batch.
func (a *BatchHashAggregate) emit(acc *groupAcc) {
	a.out = vec.New(make([]types.Kind, len(a.GroupBy)+len(a.Aggs)))
	for _, row := range acc.rows(a.GroupBy, a.Aggs) {
		a.out.AppendRow(row)
	}
	a.Stats.AddBudget(acc.reserved)
	a.done = false
}

// closeIn closes the input exactly once.
func (a *BatchHashAggregate) closeIn() error {
	if !a.inOpen {
		return nil
	}
	a.inOpen = false
	return a.In.Close()
}

// Next implements BatchIterator.
func (a *BatchHashAggregate) Next() (*vec.Batch, error) {
	if a.out == nil {
		return nil, ErrNotOpen
	}
	if a.done {
		return nil, nil
	}
	a.done = true
	a.Stats.AddOut(a.out.Rows())
	return a.out, nil
}

// Close implements BatchIterator: the input is closed here when a
// failed or abandoned Open left it open (a completed Open has already
// closed it after the drain). Idempotent.
func (a *BatchHashAggregate) Close() error {
	return a.closeIn()
}

// BatchToRows adapts a batch stream to the row-at-a-time Iterator
// protocol — the compatibility bridge that lets existing ONC
// operators consume the vectorized scan.
type BatchToRows struct {
	In BatchIterator

	b    *vec.Batch
	pos  int
	buf  []types.Value
	open bool
}

// Open implements Iterator.
func (r *BatchToRows) Open() error {
	r.b, r.pos = nil, 0
	if err := r.In.Open(); err != nil {
		return err
	}
	r.open = true
	return nil
}

// Next implements Iterator.
func (r *BatchToRows) Next() ([]types.Value, bool, error) {
	for {
		if r.b != nil && r.pos < r.b.Rows() {
			r.buf = r.b.RowAt(r.pos, r.buf)
			r.pos++
			return r.buf, true, nil
		}
		b, err := r.In.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		r.b, r.pos = b, 0
	}
}

// Close implements Iterator. Idempotent.
func (r *BatchToRows) Close() error {
	if !r.open {
		return nil
	}
	r.open = false
	return r.In.Close()
}

// RowsToBatches adapts a row iterator to the batch protocol,
// accumulating BatchSize rows per batch (vec.DefaultBatchSize when
// unset). Kinds are adopted from the first appended values.
type RowsToBatches struct {
	In        Iterator
	BatchSize int

	out  *vec.Batch
	eos  bool
	open bool
}

// Open implements BatchIterator.
func (r *RowsToBatches) Open() error {
	r.out, r.eos = nil, false
	if err := r.In.Open(); err != nil {
		return err
	}
	r.open = true
	return nil
}

// Next implements BatchIterator.
func (r *RowsToBatches) Next() (*vec.Batch, error) {
	if r.eos {
		return nil, nil
	}
	size := r.BatchSize
	if size <= 0 {
		size = vec.DefaultBatchSize
	}
	if r.out != nil {
		r.out.Reset()
	}
	n := 0
	for n < size {
		row, ok, err := r.In.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			r.eos = true
			break
		}
		if r.out == nil {
			r.out = vec.New(make([]types.Kind, len(row)))
		}
		r.out.AppendRow(row)
		n++
	}
	if n == 0 {
		return nil, nil
	}
	return r.out, nil
}

// Close implements BatchIterator. Idempotent.
func (r *RowsToBatches) Close() error {
	if !r.open {
		return nil
	}
	r.open = false
	return r.In.Close()
}

// CollectBatches drains a batch iterator into materialized rows,
// handling Open/Close.
func CollectBatches(it BatchIterator) ([][]types.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out [][]types.Value
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b.Materialize()...)
	}
}
