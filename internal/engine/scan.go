package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/rowstore"
	"repro/internal/types"
)

// TableScan reads a unified table with optional predicate pushdown:
// resolvable column ranges are pushed into the dictionary scans of
// the table's stages, the residual predicate filters row-at-a-time
// (§4.1's operators "directly leverage existing dictionaries").
//
// Open pins the statement view, materializes the matching rows, and
// releases the latch, so downstream pipeline stages never hold it.
type TableScan struct {
	Table *core.Table
	Txn   *mvcc.Txn
	Pred  expr.Predicate
	// Cols, when non-nil, projects the scan to the listed columns (in
	// that order) — late materialization: the columnar stages decode
	// only these columns. Pred still references the table's original
	// ordinals.
	Cols []int
	// AsOf, when non-zero, reads at an explicit snapshot (time
	// travel); Txn is ignored then.
	AsOf uint64
	// Ctx, when non-nil, aborts the materializing scan: Open checks it
	// every ctxStride rows and returns ctx.Err().
	Ctx context.Context

	src *SliceSource
}

// ctxStride is how many rows a materializing scan processes between
// context checks.
const ctxStride = 1024

// Open implements Iterator.
func (s *TableScan) Open() error {
	var v *core.View
	if s.AsOf != 0 {
		v = s.Table.AsOf(s.AsOf)
	} else {
		v = s.Table.View(s.Txn)
	}
	defer v.Close()
	var rows [][]types.Value
	var ctxErr error
	seen := 0
	// keepGoing folds the periodic context check into each scan
	// callback's continue decision.
	keepGoing := func() bool {
		if s.Ctx == nil {
			return true
		}
		if seen++; seen%ctxStride != 0 {
			return true
		}
		if err := s.Ctx.Err(); err != nil {
			ctxErr = err
			return false
		}
		return true
	}
	switch {
	case s.Pred == nil && s.Cols != nil:
		// Pure projection: block-decode only the selected columns.
		v.ScanCols(s.Cols, func(_ types.RowID, vals []types.Value) bool {
			rows = append(rows, types.CloneRow(vals))
			return keepGoing()
		})
	case s.Pred == nil:
		v.ScanAll(func(_ types.RowID, row []types.Value) bool {
			rows = append(rows, row)
			return keepGoing()
		})
	default:
		v.Filter(s.Pred, func(m core.Match) bool {
			if s.Cols != nil {
				out := make([]types.Value, len(s.Cols))
				for i, c := range s.Cols {
					out[i] = m.Row[c]
				}
				rows = append(rows, out)
			} else {
				rows = append(rows, m.Row)
			}
			return keepGoing()
		})
	}
	if ctxErr != nil {
		return ctxErr
	}
	s.src = NewSliceSource(rows)
	return s.src.Open()
}

// Next implements Iterator.
func (s *TableScan) Next() ([]types.Value, bool, error) {
	if s.src == nil {
		return nil, false, ErrNotOpen
	}
	return s.src.Next()
}

// Close implements Iterator.
func (s *TableScan) Close() error {
	if s.src != nil {
		return s.src.Close()
	}
	return nil
}

// RowStoreScan reads the baseline row store with a residual filter.
type RowStoreScan struct {
	Store *rowstore.Store
	Pred  expr.Predicate

	src *SliceSource
}

// Open implements Iterator.
func (s *RowStoreScan) Open() error {
	var rows [][]types.Value
	s.Store.Scan(func(_ types.RowID, row []types.Value) bool {
		if s.Pred == nil || s.Pred.Eval(row) {
			rows = append(rows, types.CloneRow(row))
		}
		return true
	})
	s.src = NewSliceSource(rows)
	return s.src.Open()
}

// Next implements Iterator.
func (s *RowStoreScan) Next() ([]types.Value, bool, error) {
	if s.src == nil {
		return nil, false, ErrNotOpen
	}
	return s.src.Next()
}

// Close implements Iterator.
func (s *RowStoreScan) Close() error {
	if s.src != nil {
		return s.src.Close()
	}
	return nil
}
