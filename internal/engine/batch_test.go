package engine

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/types"
	"repro/internal/vec"
)

// trackingIterator records Open/Close calls and can fail its Open.
type trackingIterator struct {
	openErr error
	opened  bool
	closed  bool
}

func (it *trackingIterator) Open() error {
	if it.openErr != nil {
		return it.openErr
	}
	it.opened = true
	return nil
}
func (it *trackingIterator) Next() ([]types.Value, bool, error) { return nil, false, nil }
func (it *trackingIterator) Close() error                       { it.closed = true; return nil }

// TestUnionOpenFailureClosesPrefix pins the Union.Open leak fix: when
// a later child's Open fails, the already-opened children must be
// closed, not leaked.
func TestUnionOpenFailureClosesPrefix(t *testing.T) {
	boom := errors.New("boom")
	a := &trackingIterator{}
	b := &trackingIterator{}
	c := &trackingIterator{openErr: boom}
	d := &trackingIterator{}
	u := &Union{Ins: []Iterator{a, b, c, d}}
	if err := u.Open(); err != boom {
		t.Fatalf("Open err = %v, want %v", err, boom)
	}
	if !a.closed || !b.closed {
		t.Fatalf("opened prefix not closed: a=%v b=%v", a.closed, b.closed)
	}
	if d.opened || d.closed {
		t.Fatalf("unopened suffix touched: opened=%v closed=%v", d.opened, d.closed)
	}
}

// batchSource replays materialized rows as batches of the given size.
func batchSource(rs [][]types.Value, size int) BatchIterator {
	return &RowsToBatches{In: NewSliceSource(rs), BatchSize: size}
}

func sortRows(rs [][]types.Value) {
	sort.Slice(rs, func(i, j int) bool {
		for c := range rs[i] {
			d := types.Compare(rs[i][c], rs[j][c])
			if d != 0 {
				return d < 0
			}
		}
		return false
	})
}

func TestBatchFilterProjectLimit(t *testing.T) {
	src := batchSource(rows(ints(1, 10), ints(2, 20), ints(3, 30), ints(4, 40)), 2)
	it := &BatchLimit{N: 2, In: &BatchProject{
		Cols: []int{1},
		In:   &BatchFilter{In: src, Pred: expr.Cmp{Col: 0, Op: expr.OpGe, Val: types.Int(2)}},
	}}
	got, err := CollectBatches(it)
	if err != nil {
		t.Fatal(err)
	}
	want := rows(ints(20), ints(30))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBatchHashJoin(t *testing.T) {
	left := batchSource(rows(ints(1, 100), ints(2, 200), ints(3, 300), ints(2, 201)), 3)
	right := batchSource(rows(ints(2, 7), ints(3, 8), ints(9, 9)), 2)
	j := &BatchHashJoin{Left: left, Right: right, LeftCol: 0, RightCol: 0}
	got, err := CollectBatches(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got = %v", got)
	}
	for _, row := range got {
		if len(row) != 4 || row[0].I != row[2].I {
			t.Errorf("bad join row %v", row)
		}
	}
	// NULL keys never match.
	left = batchSource(rows([]types.Value{types.Null, types.Int(1)}), 1)
	right = batchSource(rows([]types.Value{types.Null, types.Int(2)}), 1)
	j = &BatchHashJoin{Left: left, Right: right, LeftCol: 0, RightCol: 0}
	if got, err := CollectBatches(j); err != nil || len(got) != 0 {
		t.Errorf("NULL keys joined: %v %v", got, err)
	}
}

func TestBatchHashAggregate(t *testing.T) {
	in := rows(
		[]types.Value{types.Str("a"), types.Int(1), types.Float(0.5)},
		[]types.Value{types.Str("b"), types.Int(2), types.Float(1.5)},
		[]types.Value{types.Str("a"), types.Int(3), types.Float(2.5)},
		[]types.Value{types.Str("a"), types.Null, types.Float(3.5)},
	)
	specs := []Agg{
		{Func: AggCount}, {Func: AggSum, Col: 1}, {Func: AggMin, Col: 1},
		{Func: AggMax, Col: 1}, {Func: AggAvg, Col: 2},
	}
	want, err := Collect(&HashAggregate{In: NewSliceSource(in), GroupBy: []int{0}, Aggs: specs})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatches(&BatchHashAggregate{In: batchSource(in, 2), GroupBy: []int{0}, Aggs: specs})
	if err != nil {
		t.Fatal(err)
	}
	sortRows(want)
	sortRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batch agg %v, row agg %v", got, want)
	}

	// A float SUM whose first group is all-NULL yields Int(0) followed
	// by float results in the same output column — the batch must not
	// zero the later groups (mixed-kind column demotion).
	in = rows(
		[]types.Value{types.Str("a"), types.Int(0), types.Null},
		[]types.Value{types.Str("b"), types.Int(0), types.Float(47.6)},
	)
	specs = []Agg{{Func: AggSum, Col: 2}}
	want, err = Collect(&HashAggregate{In: NewSliceSource(in), GroupBy: []int{0}, Aggs: specs})
	if err != nil {
		t.Fatal(err)
	}
	got, err = CollectBatches(&BatchHashAggregate{In: batchSource(in, 4), GroupBy: []int{0}, Aggs: specs})
	if err != nil {
		t.Fatal(err)
	}
	sortRows(want)
	sortRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mixed-kind sums: batch %v, row %v", got, want)
	}

	// Global aggregate over empty input yields one row.
	got, err = CollectBatches(&BatchHashAggregate{In: batchSource(nil, 4), Aggs: []Agg{{Func: AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].I != 0 {
		t.Errorf("global empty agg = %v", got)
	}
}

func TestBatchToRowsRoundTrip(t *testing.T) {
	in := rows(ints(1, 2), ints(3, 4), ints(5, 6))
	got, err := Collect(&BatchToRows{In: batchSource(in, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip %v, want %v", got, in)
	}
}

// TestBatchTableScanMatchesTableScan compares the streaming batch
// scan against the materializing row scan on a staged table.
func TestBatchTableScanMatchesTableScan(t *testing.T) {
	db, tab := newCoreTable(t)
	regions := []string{"EMEA", "APJ", "AMER"}
	tx := db.Begin(mvcc.TxnSnapshot)
	for i := int64(1); i <= 30; i++ {
		if _, err := tab.Insert(tx, []types.Value{types.Int(i), types.Str(regions[i%3]), types.Int(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Commit(tx)
	tab.MergeL1()
	tab.MergeMain()
	tx2 := db.Begin(mvcc.TxnSnapshot)
	for i := int64(31); i <= 40; i++ {
		tab.Insert(tx2, []types.Value{types.Int(i), types.Str(regions[i%3]), types.Int(i * 10)})
	}
	db.Commit(tx2)

	pred := expr.And{
		expr.Cmp{Col: 1, Op: expr.OpEq, Val: types.Str("EMEA")},
		expr.Cmp{Col: 2, Op: expr.OpLe, Val: types.Int(300)},
	}
	for _, cols := range [][]int{nil, {0}, {2, 1}} {
		want, err := Collect(&TableScan{Table: tab, Pred: pred, Cols: cols})
		if err != nil {
			t.Fatal(err)
		}
		got, err := CollectBatches(&BatchTableScan{Table: tab, Pred: pred, Cols: cols, BatchSize: 7})
		if err != nil {
			t.Fatal(err)
		}
		sortRows(want)
		sortRows(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cols %v: batch scan %v, row scan %v", cols, got, want)
		}
	}
}

// countingBatches counts how many batches are pulled through it.
type countingBatches struct {
	In    BatchIterator
	pulls int
}

func (c *countingBatches) Open() error { return c.In.Open() }
func (c *countingBatches) Next() (*vec.Batch, error) {
	c.pulls++
	return c.In.Next()
}
func (c *countingBatches) Close() error { return c.In.Close() }

// TestBatchLimitStopsPullingEarly pins the limit-pushdown satellite:
// once the limit is satisfied the scan must not be pulled again, so a
// LIMIT 1 over a many-batch table costs one batch, not a full scan.
func TestBatchLimitStopsPullingEarly(t *testing.T) {
	db, tab := newCoreTable(t)
	tx := db.Begin(mvcc.TxnSnapshot)
	for i := int64(1); i <= 1000; i++ {
		if _, err := tab.Insert(tx, []types.Value{types.Int(i), types.Str("r"), types.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Commit(tx)
	tab.MergeL1()
	tab.MergeMain()

	src := &countingBatches{In: &BatchTableScan{Table: tab, BatchSize: 10}}
	got, err := CollectBatches(&BatchLimit{N: 1, In: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("limit 1 returned %d rows", len(got))
	}
	// 1000 rows / 10 per batch = 100 batches available; LIMIT 1 must
	// stop after the first pull.
	if src.pulls != 1 {
		t.Errorf("limit pulled %d batches, want 1", src.pulls)
	}

	// A larger limit spanning batches still terminates early.
	src = &countingBatches{In: &BatchTableScan{Table: tab, BatchSize: 10}}
	got, err = CollectBatches(&BatchLimit{N: 25, In: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("limit 25 returned %d rows", len(got))
	}
	if src.pulls != 3 {
		t.Errorf("limit 25 pulled %d batches, want 3", src.pulls)
	}
}
