package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/rowstore"
	"repro/internal/types"
)

func rows(vals ...[]types.Value) [][]types.Value { return vals }

func ints(vs ...int64) []types.Value {
	out := make([]types.Value, len(vs))
	for i, v := range vs {
		out[i] = types.Int(v)
	}
	return out
}

func TestSliceSourceAndCollect(t *testing.T) {
	src := NewSliceSource(rows(ints(1), ints(2), ints(3)))
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1][0].I != 2 {
		t.Fatalf("got = %v", got)
	}
	// Next before Open errors.
	s2 := NewSliceSource(nil)
	if _, _, err := s2.Next(); err != ErrNotOpen {
		t.Errorf("err = %v", err)
	}
}

func TestFilterProjectLimit(t *testing.T) {
	src := NewSliceSource(rows(ints(1, 10), ints(2, 20), ints(3, 30), ints(4, 40)))
	it := &Limit{N: 2, In: &Project{
		Cols: []int{1},
		In:   &Filter{In: src, Pred: expr.Cmp{Col: 0, Op: expr.OpGe, Val: types.Int(2)}},
	}}
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	want := rows(ints(20), ints(30))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUnion(t *testing.T) {
	u := &Union{Ins: []Iterator{
		NewSliceSource(rows(ints(1))),
		NewSliceSource(nil),
		NewSliceSource(rows(ints(2), ints(3))),
	}}
	got, err := Collect(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2][0].I != 3 {
		t.Errorf("got = %v", got)
	}
}

func TestHashJoin(t *testing.T) {
	left := NewSliceSource(rows(ints(1, 100), ints(2, 200), ints(3, 300), ints(2, 201)))
	right := NewSliceSource(rows(ints(2, 7), ints(3, 8), ints(9, 9)))
	j := &HashJoin{Left: left, Right: right, LeftCol: 0, RightCol: 0}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// Keys 2 (twice on the left), 3 match.
	if len(got) != 3 {
		t.Fatalf("got = %v", got)
	}
	for _, row := range got {
		if len(row) != 4 || row[0].I != row[2].I {
			t.Errorf("bad join row %v", row)
		}
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := NewSliceSource(rows([]types.Value{types.Null, types.Int(1)}))
	right := NewSliceSource(rows([]types.Value{types.Null, types.Int(2)}))
	j := &HashJoin{Left: left, Right: right, LeftCol: 0, RightCol: 0}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("NULL keys joined: %v", got)
	}
}

func TestHashAggregate(t *testing.T) {
	src := NewSliceSource(rows(
		[]types.Value{types.Str("a"), types.Int(1), types.Float(0.5)},
		[]types.Value{types.Str("b"), types.Int(2), types.Float(1.5)},
		[]types.Value{types.Str("a"), types.Int(3), types.Float(2.5)},
		[]types.Value{types.Str("a"), types.Null, types.Float(3.5)},
	))
	agg := &HashAggregate{
		In:      src,
		GroupBy: []int{0},
		Aggs: []Agg{
			{Func: AggCount}, {Func: AggSum, Col: 1}, {Func: AggMin, Col: 1},
			{Func: AggMax, Col: 1}, {Func: AggAvg, Col: 2},
		},
	}
	got, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
	byKey := map[string][]types.Value{}
	for _, r := range got {
		byKey[r[0].S] = r
	}
	a := byKey["a"]
	if a[1].I != 3 { // count counts rows
		t.Errorf("count(a) = %v", a[1])
	}
	if a[2].I != 4 { // sum skips NULL
		t.Errorf("sum(a) = %v", a[2])
	}
	if a[3].I != 1 || a[4].I != 3 {
		t.Errorf("min/max(a) = %v/%v", a[3], a[4])
	}
	if av := a[5].F; av < 2.16 || av > 2.17 {
		t.Errorf("avg(a) = %v", a[5])
	}
}

func TestHashAggregateGlobalEmptyInput(t *testing.T) {
	agg := &HashAggregate{In: NewSliceSource(nil), Aggs: []Agg{{Func: AggCount}, {Func: AggSum, Col: 0}}}
	got, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].I != 0 {
		t.Errorf("global empty agg = %v", got)
	}
}

func TestSort(t *testing.T) {
	src := NewSliceSource(rows(ints(2, 9), ints(1, 8), ints(2, 7), ints(0, 6)))
	s := &Sort{In: src, Keys: []SortSpec{{Col: 0}, {Col: 1, Desc: true}}}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := rows(ints(0, 6), ints(1, 8), ints(2, 9), ints(2, 7))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v", got)
	}
}

func newCoreTable(t *testing.T) (*core.Database, *core.Table) {
	t.Helper()
	db, err := core.OpenDatabase(core.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tab, err := db.CreateTable(core.TableConfig{
		Name: "t",
		Schema: types.MustSchema([]types.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "region", Kind: types.KindString},
			{Name: "amount", Kind: types.KindInt64},
		}, 0),
		Compress: true, CompactDicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func TestTableScanWithPushdown(t *testing.T) {
	db, tab := newCoreTable(t)
	regions := []string{"EMEA", "APJ", "AMER"}
	tx := db.Begin(mvcc.TxnSnapshot)
	for i := int64(1); i <= 30; i++ {
		if _, err := tab.Insert(tx, []types.Value{types.Int(i), types.Str(regions[i%3]), types.Int(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Commit(tx)
	// Spread across stages.
	tab.MergeL1()
	tab.MergeMain()
	tx2 := db.Begin(mvcc.TxnSnapshot)
	for i := int64(31); i <= 40; i++ {
		tab.Insert(tx2, []types.Value{types.Int(i), types.Str(regions[i%3]), types.Int(i * 10)})
	}
	db.Commit(tx2)

	scan := &TableScan{Table: tab, Pred: expr.And{
		expr.Cmp{Col: 1, Op: expr.OpEq, Val: types.Str("EMEA")},
		expr.Cmp{Col: 2, Op: expr.OpLe, Val: types.Int(300)},
	}}
	got, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := int64(1); i <= 40; i++ {
		if regions[i%3] == "EMEA" && i*10 <= 300 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("scan rows = %d, want %d", len(got), want)
	}
	for _, r := range got {
		if r[1].S != "EMEA" || r[2].I > 300 {
			t.Errorf("predicate violated: %v", r)
		}
	}
}

func TestRowStoreScan(t *testing.T) {
	rs, err := rowstore.New(types.MustSchema([]types.Column{
		{Name: "id", Kind: types.KindInt64},
		{Name: "v", Kind: types.KindInt64},
	}, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		rs.Insert(ints(i, i*2))
	}
	scan := &RowStoreScan{Store: rs, Pred: expr.Cmp{Col: 1, Op: expr.OpGt, Val: types.Int(10)}}
	got, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("rows = %d", len(got))
	}
}

func TestStarJoin(t *testing.T) {
	// Fact: (custID, prodID, revenue)
	fact := NewSliceSource(rows(
		ints(1, 10, 100), ints(2, 10, 200), ints(1, 20, 300),
		ints(3, 10, 400), // cust 3 not in (filtered) dim
		ints(1, 30, 500), // prod 30 not in dim
	))
	customers := NewSliceSource(rows(
		[]types.Value{types.Int(1), types.Str("acme")},
		[]types.Value{types.Int(2), types.Str("bolt")},
	))
	products := NewSliceSource(rows(
		[]types.Value{types.Int(10), types.Str("widget")},
		[]types.Value{types.Int(20), types.Str("gadget")},
	))
	sj := &StarJoin{
		Fact: fact,
		Dims: []Dimension{
			{In: customers, KeyCol: 0, FactCol: 0, Payload: []int{1}},
			{In: products, KeyCol: 0, FactCol: 1, Payload: []int{1}},
		},
	}
	// Group by customer name, sum revenue.
	agg := &HashAggregate{In: sj, GroupBy: []int{3}, Aggs: []Agg{{Func: AggSum, Col: 2}}}
	got, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]int64{}
	for _, r := range got {
		sums[r[0].S] = r[1].I
	}
	if sums["acme"] != 400 || sums["bolt"] != 200 {
		t.Errorf("sums = %v", sums)
	}
}

func TestStarJoinDuplicateDimKeyRejected(t *testing.T) {
	sj := &StarJoin{
		Fact: NewSliceSource(nil),
		Dims: []Dimension{{
			In:     NewSliceSource(rows(ints(1, 1), ints(1, 2))),
			KeyCol: 0, FactCol: 0,
		}},
	}
	if err := sj.Open(); err == nil {
		t.Error("duplicate dimension key accepted")
	}
}

func TestPipelineComposition(t *testing.T) {
	// A deeper tree: scan → filter → join → aggregate → sort → limit.
	db, tab := newCoreTable(t)
	tx := db.Begin(mvcc.TxnSnapshot)
	for i := int64(1); i <= 50; i++ {
		tab.Insert(tx, []types.Value{types.Int(i), types.Str(fmt.Sprintf("r%d", i%5)), types.Int(i)})
	}
	db.Commit(tx)

	dims := NewSliceSource(rows(
		[]types.Value{types.Str("r1"), types.Str("one")},
		[]types.Value{types.Str("r2"), types.Str("two")},
	))
	plan := &Limit{N: 1, In: &Sort{
		Keys: []SortSpec{{Col: 1, Desc: true}},
		In: &HashAggregate{
			GroupBy: []int{4}, // dim label
			Aggs:    []Agg{{Func: AggSum, Col: 2}},
			In: &HashJoin{
				Left:    &TableScan{Table: tab},
				Right:   dims,
				LeftCol: 1, RightCol: 0,
			},
		},
	}}
	got, err := Collect(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got = %v", got)
	}
	// r2 rows: 2,7,...,47 sum = 245; r1: 1,6,...,46 sum = 235.
	if got[0][0].S != "two" || got[0][1].I != 245 {
		t.Errorf("top group = %v", got[0])
	}
}
