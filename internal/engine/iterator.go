// Package engine implements the physical operators of the "Engine
// Layer" (paper §2.2): relational operators (scan, filter, project,
// hash join, aggregation, sort, union) and the OLAP star-join
// operator optimized for fact/dimension schemas. Operators follow the
// classical ONC (Open-Next-Close) protocol [3] for pipelined
// execution; sources over the unified table use the "materialize
// all" strategy to keep their statement latch short (§3.1 describes
// both modes; the optimizer mixes them).
package engine

import (
	"errors"

	"repro/internal/types"
)

// Iterator is the Open-Next-Close operator protocol.
type Iterator interface {
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next row; ok is false at end of stream. The
	// returned slice must not be modified by the caller.
	Next() (row []types.Value, ok bool, err error)
	// Close releases resources (and closes children).
	Close() error
}

// ErrNotOpen reports Next on an unopened iterator.
var ErrNotOpen = errors.New("engine: iterator not open")

// Collect drains an iterator into a materialized result, handling
// Open/Close.
func Collect(it Iterator) ([][]types.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out [][]types.Value
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, types.CloneRow(row))
	}
}

// SliceSource replays a materialized row set; script nodes and tests
// use it, and the calc-graph executor wraps shared intermediate
// results in it.
type SliceSource struct {
	Rows [][]types.Value
	pos  int
	open bool
}

// NewSliceSource wraps rows.
func NewSliceSource(rows [][]types.Value) *SliceSource {
	return &SliceSource{Rows: rows}
}

// Open implements Iterator.
func (s *SliceSource) Open() error { s.pos = 0; s.open = true; return nil }

// Next implements Iterator.
func (s *SliceSource) Next() ([]types.Value, bool, error) {
	if !s.open {
		return nil, false, ErrNotOpen
	}
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	row := s.Rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close implements Iterator.
func (s *SliceSource) Close() error { s.open = false; return nil }
