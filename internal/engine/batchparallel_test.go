package engine

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mvcc"
	"repro/internal/types"
	"repro/internal/vec"
)

// trackingBatches wraps a batch iterator, counting Open/Close calls
// and optionally failing Open or the nth Next.
type trackingBatches struct {
	In      BatchIterator
	openErr error
	nextErr error
	failAt  int // fail the failAt-th Next (1-based) with nextErr

	opens, closes, nexts int
}

func (it *trackingBatches) Open() error {
	if it.openErr != nil {
		return it.openErr
	}
	it.opens++
	return it.In.Open()
}

func (it *trackingBatches) Next() (*vec.Batch, error) {
	it.nexts++
	if it.nextErr != nil && it.nexts == it.failAt {
		return nil, it.nextErr
	}
	return it.In.Next()
}

func (it *trackingBatches) Close() error {
	it.closes++
	return it.In.Close()
}

// TestBatchOperatorCloseIdempotent pins the bugfix sweep: every batch
// operator's Close must be idempotent and safe before Open, closing
// each child at most once.
func TestBatchOperatorCloseIdempotent(t *testing.T) {
	mk := func() (*trackingBatches, *trackingBatches) {
		return &trackingBatches{In: batchSource(rows(ints(1, 10), ints(2, 20)), 1)},
			&trackingBatches{In: batchSource(rows(ints(1, 7)), 1)}
	}
	cases := []struct {
		name  string
		build func(a, b *trackingBatches) BatchIterator
	}{
		{"filter", func(a, _ *trackingBatches) BatchIterator { return &BatchFilter{In: a} }},
		{"project", func(a, _ *trackingBatches) BatchIterator { return &BatchProject{In: a, Cols: []int{0}} }},
		{"limit", func(a, _ *trackingBatches) BatchIterator { return &BatchLimit{In: a, N: 1} }},
		{"join", func(a, b *trackingBatches) BatchIterator {
			return &BatchHashJoin{Left: a, Right: b, LeftCol: 0, RightCol: 0}
		}},
		{"aggregate", func(a, _ *trackingBatches) BatchIterator {
			return &BatchHashAggregate{In: a, Aggs: []Agg{{Func: AggCount}}}
		}},
	}
	for _, tc := range cases {
		// Close before Open: must be a no-op, not a child Close.
		a, b := mk()
		op := tc.build(a, b)
		if err := op.Close(); err != nil {
			t.Errorf("%s: Close before Open: %v", tc.name, err)
		}
		if a.closes != 0 || b.closes != 0 {
			t.Errorf("%s: Close before Open touched children (a=%d b=%d)", tc.name, a.closes, b.closes)
		}

		// Full cycle, then double Close: each child closed exactly once.
		a, b = mk()
		op = tc.build(a, b)
		if err := op.Open(); err != nil {
			t.Fatalf("%s: Open: %v", tc.name, err)
		}
		for {
			batch, err := op.Next()
			if err != nil {
				t.Fatalf("%s: Next: %v", tc.name, err)
			}
			if batch == nil {
				break
			}
		}
		if err := op.Close(); err != nil {
			t.Errorf("%s: Close: %v", tc.name, err)
		}
		if err := op.Close(); err != nil {
			t.Errorf("%s: second Close: %v", tc.name, err)
		}
		if a.closes > 1 || b.closes > 1 {
			t.Errorf("%s: child closed more than once (a=%d b=%d)", tc.name, a.closes, b.closes)
		}
		if a.opens > 0 && a.closes != 1 {
			t.Errorf("%s: left opened %d closed %d", tc.name, a.opens, a.closes)
		}
		if b.opens > 0 && b.closes != 1 {
			t.Errorf("%s: right opened %d closed %d", tc.name, b.opens, b.closes)
		}
	}
}

// TestBatchHashJoinOpenErrorPaths pins the join Open cleanup: every
// failure point leaves no child open behind.
func TestBatchHashJoinOpenErrorPaths(t *testing.T) {
	boom := errors.New("boom")

	// Build side Open fails: nothing to clean, Close stays safe.
	l := &trackingBatches{In: batchSource(rows(ints(1)), 1)}
	r := &trackingBatches{In: batchSource(rows(ints(1)), 1), openErr: boom}
	j := &BatchHashJoin{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	if err := j.Open(); err != boom {
		t.Fatalf("Open err = %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close after failed Open: %v", err)
	}
	if l.opens != 0 || l.closes != 0 || r.closes != 0 {
		t.Fatalf("failed right Open touched children: l=%d/%d r closes=%d", l.opens, l.closes, r.closes)
	}

	// Build drain fails mid-stream: the build side must still close.
	l = &trackingBatches{In: batchSource(rows(ints(1)), 1)}
	r = &trackingBatches{In: batchSource(rows(ints(1), ints(2)), 1), nextErr: boom, failAt: 2}
	j = &BatchHashJoin{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	if err := j.Open(); err != boom {
		t.Fatalf("Open err = %v", err)
	}
	if r.closes != 1 {
		t.Fatalf("build side closed %d times after drain error", r.closes)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if r.closes != 1 || l.closes != 0 {
		t.Fatalf("Close after drain error: r=%d l=%d", r.closes, l.closes)
	}

	// Probe side Open fails after a successful build: build side is
	// already closed, and Close must not close anything twice.
	l = &trackingBatches{In: batchSource(rows(ints(1)), 1), openErr: boom}
	r = &trackingBatches{In: batchSource(rows(ints(1)), 1)}
	j = &BatchHashJoin{Left: l, Right: r, LeftCol: 0, RightCol: 0}
	if err := j.Open(); err != boom {
		t.Fatalf("Open err = %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if r.closes != 1 || l.closes != 0 {
		t.Fatalf("after probe Open failure: r closes=%d l closes=%d", r.closes, l.closes)
	}
}

// TestBatchHashAggregateClosesInputOnce pins the aggregate lifecycle:
// the input closes exactly once whether the drain succeeds, fails, or
// the operator is abandoned between Open attempts.
func TestBatchHashAggregateClosesInputOnce(t *testing.T) {
	boom := errors.New("boom")

	in := &trackingBatches{In: batchSource(rows(ints(1), ints(2)), 1)}
	a := &BatchHashAggregate{In: in, Aggs: []Agg{{Func: AggCount}}}
	if err := a.Open(); err != nil {
		t.Fatal(err)
	}
	if in.closes != 1 {
		t.Fatalf("input closed %d times after Open drain", in.closes)
	}
	a.Close()
	a.Close()
	if in.closes != 1 {
		t.Fatalf("input closed %d times after double Close", in.closes)
	}

	// Drain error: input must close exactly once, via Open's cleanup.
	in = &trackingBatches{In: batchSource(rows(ints(1), ints(2)), 1), nextErr: boom, failAt: 2}
	a = &BatchHashAggregate{In: in, Aggs: []Agg{{Func: AggCount}}}
	if err := a.Open(); err != boom {
		t.Fatalf("Open err = %v", err)
	}
	if in.closes != 1 {
		t.Fatalf("input closed %d times after drain error", in.closes)
	}
	a.Close()
	if in.closes != 1 {
		t.Fatalf("input closed %d times after Close", in.closes)
	}
}

// selReuseSource is a minimal producer that refills ONE batch object
// via column appends + SetLen, never touching Sel — the contract a
// limit must not violate by planting a selection on the batch.
type selReuseSource struct {
	fills [][][]types.Value
	i     int
	b     *vec.Batch
}

func (s *selReuseSource) Open() error { s.i = 0; return nil }
func (s *selReuseSource) Close() error { return nil }
func (s *selReuseSource) Next() (*vec.Batch, error) {
	if s.i >= len(s.fills) {
		return nil, nil
	}
	rows := s.fills[s.i]
	s.i++
	if s.b == nil {
		kinds := make([]types.Kind, len(rows[0]))
		for i, v := range rows[0] {
			kinds[i] = v.Kind
		}
		s.b = vec.New(kinds)
	}
	for _, c := range s.b.Cols {
		c.Reset()
	}
	s.b.SetLen(0)
	for _, row := range rows {
		s.b.AppendRow(row)
	}
	return s.b, nil
}

// TestBatchLimitSelectionVectorBoundary pins the limit-truncation
// satellite: a batch with a live selection vector crossing the limit
// boundary yields exactly the first remaining live rows, and the
// producer's reused batch is left untouched — later fills of the same
// batch object must not inherit a planted selection.
func TestBatchLimitSelectionVectorBoundary(t *testing.T) {
	// Selection-vector batch crossing the boundary: 6 physical rows,
	// live = {10, 30, 50} via Sel, limit 2 → rows 10, 30.
	src := &selReuseSource{fills: [][][]types.Value{
		rows(ints(10), ints(20), ints(30), ints(40), ints(50), ints(60)),
	}}
	filtered := &BatchFilter{In: src, Pred: oddIndexPred{}}
	lim := &BatchLimit{In: filtered, N: 2}
	got, err := CollectBatches(lim)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows(ints(10), ints(30))) {
		t.Fatalf("sel-crossing limit = %v", got)
	}

	// The producer's batch object must carry no planted selection: a
	// later fill of the same object must expose every appended row.
	src2 := &selReuseSource{fills: [][][]types.Value{
		rows(ints(1), ints(2), ints(3), ints(4)),
		rows(ints(5), ints(6), ints(7), ints(8)),
		rows(ints(9), ints(10), ints(11), ints(12)),
	}}
	lim = &BatchLimit{In: src2, N: 6} // crosses mid-batch-2
	if err := lim.Open(); err != nil {
		t.Fatal(err)
	}
	var limited [][]types.Value
	for {
		b, err := lim.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		limited = append(limited, b.Materialize()...)
	}
	if len(limited) != 6 {
		t.Fatalf("limit 6 returned %d rows", len(limited))
	}
	// Resume the producer directly (pagination over the same stream):
	// batch 3 must surface all 4 rows, not a truncated ghost of 2.
	b, err := src2.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b == nil || b.Rows() != 4 {
		t.Fatalf("post-limit fill of reused batch sees %v rows, want 4 (planted Sel?)", b.Rows())
	}
	if err := lim.Close(); err != nil {
		t.Fatal(err)
	}
}

// oddIndexPred keeps physical rows 0, 2, 4 — it exists to force a
// selection vector through BatchFilter without touching values.
type oddIndexPred struct{ n int }

func (p oddIndexPred) Eval(row []types.Value) bool { return row[0].I%20 == 10 }
func (p oddIndexPred) String() string              { return "oddIndex" }

// buildStaged populates a three-stage table (two main parts, frozen
// L2, L1 tail) of n rows keyed 1..n, with small morsels so parallel
// scans exercise many morsel boundaries.
func buildStaged(t *testing.T, n int64, morselRows int) func() *BatchTableScan {
	t.Helper()
	db, err := core.OpenDatabase(core.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tab, err := db.CreateTable(core.TableConfig{
		Name: "staged",
		Schema: types.MustSchema([]types.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "region", Kind: types.KindString},
			{Name: "qty", Kind: types.KindInt64},
		}, 0),
		Compress: true, CompactDicts: true,
		ScanMorselRows: morselRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"EMEA", "APJ", "AMER"}
	ins := func(lo, hi int64) {
		tx := db.Begin(mvcc.TxnSnapshot)
		for i := lo; i <= hi; i++ {
			if _, err := tab.Insert(tx, []types.Value{types.Int(i), types.Str(regions[i%3]), types.Int(i % 11)}); err != nil {
				t.Fatal(err)
			}
		}
		db.Commit(tx)
	}
	half := n / 2
	ins(1, half)
	tab.MergeL1()
	tab.MergeMain()
	ins(half+1, half+n/4)
	tab.MergeL1()
	tab.MergeMain()
	ins(half+n/4+1, n)
	tab.MergeL1()
	return func() *BatchTableScan {
		return &BatchTableScan{Table: tab, BatchSize: 16}
	}
}

// TestBatchHashAggregateParallelMatchesSequential pins the
// order-insensitive combine: the parallel partial-accumulator drain
// must produce exactly the sequential drain's groups — including the
// first-seen group order — for several worker counts.
func TestBatchHashAggregateParallelMatchesSequential(t *testing.T) {
	mk := buildStaged(t, 400, 13)
	specs := []Agg{
		{Func: AggCount}, {Func: AggSum, Col: 2},
		{Func: AggMin, Col: 0}, {Func: AggMax, Col: 0},
	}
	seq := mk()
	seq.Workers = 1
	want, err := CollectBatches(&BatchHashAggregate{In: seq, GroupBy: []int{1}, Aggs: specs})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par := mk()
		par.Workers = workers
		got, err := CollectBatches(&BatchHashAggregate{In: par, GroupBy: []int{1}, Aggs: specs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel agg %v, sequential %v", workers, got, want)
		}
	}

	// Global aggregate (no GroupBy) over the parallel drain.
	par := mk()
	par.Workers = 4
	got, err := CollectBatches(&BatchHashAggregate{In: par, Aggs: []Agg{{Func: AggCount}, {Func: AggSum, Col: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0].I != 400 {
		t.Fatalf("global parallel agg = %v", got)
	}
}

// TestBatchHashJoinParallelBuildMatchesSequential pins the
// partitioned parallel build: identical join output (rows AND
// per-key build order, hence row order) for every worker count.
func TestBatchHashJoinParallelBuildMatchesSequential(t *testing.T) {
	mkBuild := buildStaged(t, 300, 17)
	probe := rows(
		[]types.Value{types.Int(3), types.Str("p3")},
		[]types.Value{types.Int(7), types.Str("p7")},
		[]types.Value{types.Int(299), types.Str("p299")},
		[]types.Value{types.Null, types.Str("pn")},
		[]types.Value{types.Int(100000), types.Str("miss")},
	)
	seqBuild := mkBuild()
	seqBuild.Workers = 1
	want, err := CollectBatches(&BatchHashJoin{
		Left: batchSource(probe, 2), Right: seqBuild, LeftCol: 0, RightCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		parBuild := mkBuild()
		parBuild.Workers = workers
		got, err := CollectBatches(&BatchHashJoin{
			Left: batchSource(probe, 2), Right: parBuild, LeftCol: 0, RightCol: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel-build join %v, sequential %v", workers, got, want)
		}
	}
}

// TestBatchTableScanUnordered pins the unordered scan surface: the
// parallel pull path returns the same row set as the ordered scan.
func TestBatchTableScanUnordered(t *testing.T) {
	mk := buildStaged(t, 200, 9)
	ordered := mk()
	want, err := CollectBatches(ordered)
	if err != nil {
		t.Fatal(err)
	}
	unordered := mk()
	unordered.Unordered = true
	unordered.Workers = 4
	got, err := CollectBatches(unordered)
	if err != nil {
		t.Fatal(err)
	}
	sortRows(want)
	sortRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unordered scan: %d rows, ordered %d", len(got), len(want))
	}
}
