package engine

import (
	"fmt"

	"repro/internal/types"
)

// Dimension describes one arm of a star join: a (pre-filtered)
// dimension input, the dimension's key column, the fact table's
// foreign-key column, and the dimension columns carried into the
// output.
type Dimension struct {
	In      Iterator
	KeyCol  int
	FactCol int
	Payload []int
}

// StarJoin is the OLAP operator of §2.2: "OLAP operators are
// optimized for star-join scenarios with fact and dimension tables".
// Every dimension is hashed once (dimension tables are small); the
// fact stream is probed against all of them in one pass — a fact row
// survives only if it matches every dimension (semijoin reduction).
// Output rows are the fact columns followed by each surviving
// dimension's payload columns, ready for HashAggregate.
type StarJoin struct {
	Fact Iterator
	Dims []Dimension

	tables []map[types.Value][]types.Value
	buf    []types.Value
}

// Open implements Iterator.
func (s *StarJoin) Open() error {
	s.tables = make([]map[types.Value][]types.Value, len(s.Dims))
	for i, d := range s.Dims {
		rows, err := Collect(d.In)
		if err != nil {
			return err
		}
		tbl := make(map[types.Value][]types.Value, len(rows))
		for _, row := range rows {
			k := row[d.KeyCol]
			if k.IsNull() {
				continue
			}
			if _, dup := tbl[k]; dup {
				return fmt.Errorf("engine: star join dimension %d has duplicate key %v", i, k)
			}
			payload := make([]types.Value, len(d.Payload))
			for j, c := range d.Payload {
				payload[j] = row[c]
			}
			tbl[k] = payload
		}
		s.tables[i] = tbl
	}
	return s.Fact.Open()
}

// Next implements Iterator.
func (s *StarJoin) Next() ([]types.Value, bool, error) {
	if s.tables == nil {
		return nil, false, ErrNotOpen
	}
probe:
	for {
		row, ok, err := s.Fact.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		s.buf = s.buf[:0]
		s.buf = append(s.buf, row...)
		for i, d := range s.Dims {
			k := row[d.FactCol]
			if k.IsNull() {
				continue probe
			}
			payload, hit := s.tables[i][k]
			if !hit {
				continue probe
			}
			s.buf = append(s.buf, payload...)
		}
		return s.buf, true, nil
	}
}

// Close implements Iterator.
func (s *StarJoin) Close() error { return s.Fact.Close() }
