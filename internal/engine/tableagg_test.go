package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mvcc"
	"repro/internal/types"
)

// buildMixedTable spreads rows with NULLs and deletes across all
// three stages (including a split main) so every aggregation path is
// exercised.
func buildMixedTable(t testing.TB) (*core.Database, *core.Table, int) {
	t.Helper()
	db, err := core.OpenDatabase(core.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tab, err := db.CreateTable(core.TableConfig{
		Name: "t",
		Schema: types.MustSchema([]types.Column{
			{Name: "id", Kind: types.KindInt64},
			{Name: "region", Kind: types.KindString, Nullable: true},
			{Name: "qty", Kind: types.KindInt64, Nullable: true},
			{Name: "price", Kind: types.KindFloat64},
		}, 0),
		Strategy: core.MergePartial, ActiveMainMax: 40,
		Compress: true, CompactDicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	regions := []string{"EMEA", "APJ", "AMER"}
	id := int64(0)
	insert := func(n int) {
		tx := db.Begin(mvcc.TxnSnapshot)
		for i := 0; i < n; i++ {
			id++
			region := types.Null
			if rng.Intn(10) > 0 {
				region = types.Str(regions[rng.Intn(3)])
			}
			qty := types.Null
			if rng.Intn(10) > 0 {
				qty = types.Int(int64(rng.Intn(100)))
			}
			row := []types.Value{types.Int(id), region, qty, types.Float(float64(rng.Intn(1000)) / 4)}
			if _, err := tab.Insert(tx, row); err != nil {
				t.Fatal(err)
			}
		}
		db.Commit(tx)
	}
	insert(60)
	tab.MergeL1()
	tab.MergeMain() // part 1
	insert(30)
	tab.MergeL1()
	tab.MergeMain() // part 2 (partial)
	insert(25)
	tab.MergeL1() // L2 rows
	insert(15)    // L1 rows
	// Deletes sprinkled everywhere.
	for i := 0; i < 12; i++ {
		tx := db.Begin(mvcc.TxnSnapshot)
		tab.DeleteKey(tx, types.Int(1+rng.Int63n(id)))
		db.Commit(tx)
	}
	return db, tab, int(id)
}

// TestTableAggregatePathsAgree runs the same aggregation through the
// vectorized numeric kernel, the code-grouped path, and the generic
// HashAggregate over a full scan, and requires identical results.
func TestTableAggregatePathsAgree(t *testing.T) {
	_, tab, _ := buildMixedTable(t)

	aggs := []Agg{
		{Func: AggCount},
		{Func: AggSum, Col: 2},
		{Func: AggSum, Col: 3},
		{Func: AggAvg, Col: 3},
	}
	// Path 1: fused (numeric kernel — Count/Sum/Avg only).
	fused := &TableAggregate{Table: tab, GroupBy: []int{1}, Aggs: aggs}
	gotFused, err := Collect(fused)
	if err != nil {
		t.Fatal(err)
	}
	// Path 2: generic over materialized scan.
	generic := &HashAggregate{In: &TableScan{Table: tab}, GroupBy: []int{1}, Aggs: aggs}
	gotGeneric, err := Collect(generic)
	if err != nil {
		t.Fatal(err)
	}
	compareGroups(t, "fused-vs-generic", gotFused, gotGeneric)

	// Path 3: Min/Max force the code-grouped (non-kernel) path.
	aggsMM := []Agg{{Func: AggCount}, {Func: AggMin, Col: 2}, {Func: AggMax, Col: 3}}
	fusedMM := &TableAggregate{Table: tab, GroupBy: []int{1}, Aggs: aggsMM}
	gotMM, err := Collect(fusedMM)
	if err != nil {
		t.Fatal(err)
	}
	genericMM := &HashAggregate{In: &TableScan{Table: tab}, GroupBy: []int{1}, Aggs: aggsMM}
	wantMM, err := Collect(genericMM)
	if err != nil {
		t.Fatal(err)
	}
	compareGroups(t, "minmax", gotMM, wantMM)
}

// TestTableAggregateWithPredicate exercises the filtered path.
func TestTableAggregateWithPredicate(t *testing.T) {
	_, tab, _ := buildMixedTable(t)
	pred := gtPred{col: 0, v: 50}
	aggs := []Agg{{Func: AggCount}, {Func: AggSum, Col: 3}}
	fused := &TableAggregate{Table: tab, Pred: pred, GroupBy: []int{1}, Aggs: aggs}
	got, err := Collect(fused)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(&HashAggregate{
		In: &TableScan{Table: tab, Pred: pred}, GroupBy: []int{1}, Aggs: aggs,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareGroups(t, "predicate", got, want)
}

// TestTableAggregateMultiGroup exercises the generic projected path
// (two group columns).
func TestTableAggregateMultiGroup(t *testing.T) {
	_, tab, _ := buildMixedTable(t)
	aggs := []Agg{{Func: AggCount}}
	got, err := Collect(&TableAggregate{Table: tab, GroupBy: []int{1, 2}, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(&HashAggregate{In: &TableScan{Table: tab}, GroupBy: []int{1, 2}, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	compareGroups(t, "multigroup", got, want)
}

// TestTableAggregateGlobal has no group-by at all.
func TestTableAggregateGlobal(t *testing.T) {
	_, tab, n := buildMixedTable(t)
	got, err := Collect(&TableAggregate{Table: tab, Aggs: []Agg{{Func: AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rows = %v", got)
	}
	if got[0][0].I <= 0 || got[0][0].I > int64(n) {
		t.Fatalf("count = %v (inserted %d minus deletes)", got[0][0], n)
	}
}

func compareGroups(t *testing.T, label string, got, want [][]types.Value) {
	t.Helper()
	key := func(rows [][]types.Value) map[string]string {
		m := map[string]string{}
		for _, r := range rows {
			m[r[0].String()+"/"+fmt.Sprint(r[0].IsNull())] = fmt.Sprintf("%v", r[1:])
		}
		return m
	}
	g, w := key(got), key(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d groups vs %d\n got: %v\nwant: %v", label, len(g), len(w), got, want)
	}
	for k, v := range w {
		if g[k] != v {
			t.Fatalf("%s: group %s: got %s, want %s", label, k, g[k], v)
		}
	}
}

type gtPred struct {
	col int
	v   int64
}

func (p gtPred) Eval(row []types.Value) bool {
	return !row[p.col].IsNull() && row[p.col].I > p.v
}
func (p gtPred) String() string { return "gt" }
