package engine

import (
	"context"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/mvcc"
	"repro/internal/rowstore"
	"repro/internal/types"
)

// TableAggregate fuses a unified-table scan with grouping and
// aggregation: the view's block-decoding columnar scan feeds the
// aggregate states directly, with no intermediate row
// materialization — the scan-based aggregation pattern the main store
// is optimized for (§3, §5). The calc executor compiles
// Aggregate(Table) pairs to this operator.
type TableAggregate struct {
	Table *core.Table
	Txn   *mvcc.Txn
	AsOf  uint64
	// Pred filters rows (evaluated on the projected columns when
	// PredOnProjection is set, on full rows otherwise).
	Pred expr.Predicate
	// GroupBy and Aggs reference the table's original column
	// ordinals.
	GroupBy []int
	Aggs    []Agg
	// Ctx, when non-nil, cancels the aggregation at row-stride
	// granularity — the fused operator is where a single-worker
	// group-by spends its whole life, so kills and timeouts must reach
	// inside it.
	Ctx context.Context
	// Budget, when non-nil, charges accumulator growth against the
	// statement's memory budget (falls back to the Ctx-carried meter).
	Budget *budget.Meter
	// Stats, when non-nil, collects the aggregate's actuals; ScanStats
	// receives the fused-away scan node's numbers (rows read from the
	// table before grouping), since no scan operator exists to report
	// them.
	Stats     *OpStats
	ScanStats *OpStats

	out *SliceSource
	// scanned counts the table rows the fused drain read, per path.
	scanned uint64
}

// ctxCheckStride bounds how many rows a fused aggregation processes
// between context checks: frequent enough that cancellation reaches a
// running statement in microseconds, rare enough to vanish in scan
// cost.
const ctxCheckStride = 1024

// meter resolves the effective budget meter.
func (a *TableAggregate) meter() *budget.Meter {
	if a.Budget != nil {
		return a.Budget
	}
	return budget.FromContext(a.Ctx)
}

// Open implements Iterator: it runs the whole aggregation.
func (a *TableAggregate) Open() error {
	if a.Stats == nil && a.ScanStats == nil {
		return a.open()
	}
	t0 := time.Now()
	err := a.open()
	a.Stats.AddWall(time.Since(t0))
	// The fused drain has no scan operator; report the rows it read
	// against the plan's table node (single worker, no morsels).
	a.ScanStats.SetScan(core.ScanStats{Rows: a.scanned, Workers: 1})
	a.ScanStats.AddWall(time.Since(t0))
	if a.out != nil {
		a.Stats.AddOut(len(a.out.Rows))
	}
	return err
}

func (a *TableAggregate) open() error {
	if a.Ctx != nil {
		if err := a.Ctx.Err(); err != nil {
			return err
		}
	}
	var v *core.View
	if a.AsOf != 0 {
		v = a.Table.AsOf(a.AsOf)
	} else {
		v = a.Table.View(a.Txn)
	}
	defer v.Close()

	if a.Pred == nil && len(a.GroupBy) == 1 {
		if a.numericOnly() {
			// Fully vectorized: per-stage kernels accumulate counts
			// and sums indexed by dictionary codes, touching only the
			// decoded code blocks and the dictionaries' numeric
			// backing arrays (§4.1, [15]). The kernel runs to
			// completion; cancellation is only observed at its edges.
			rows, err := a.numericGrouped(v)
			if err != nil {
				return err
			}
			a.out = NewSliceSource(rows)
			return a.out.Open()
		}
		// Code-level grouping: accumulate into arrays indexed by the
		// grouping column's dictionary codes, one array per code
		// space, and merge the (few) groups by value at the end —
		// no per-row hashing (§4.1).
		rows, err := a.groupedByCode(v)
		if err != nil {
			return err
		}
		a.out = NewSliceSource(rows)
		return a.out.Open()
	}
	acc := newGroupAcc(len(a.GroupBy), a.Aggs)
	acc.meter = a.meter()
	seen := 0
	tick := func() bool {
		seen++
		if a.Ctx != nil && seen%ctxCheckStride == 0 {
			if err := a.Ctx.Err(); err != nil {
				acc.err = err
				return false
			}
		}
		return acc.err == nil
	}
	if a.Pred != nil {
		// Predicates need full rows; use the filtering scan.
		v.Filter(a.Pred, func(m core.Match) bool {
			acc.add(m.Row, a.GroupBy, a.Aggs)
			return tick()
		})
	} else {
		// Pure aggregation: decode only the needed columns.
		cols, gIdx, aIdx := neededColumns(a.GroupBy, a.Aggs)
		v.ScanCols(cols, func(_ types.RowID, vals []types.Value) bool {
			acc.addProjected(vals, gIdx, aIdx, a.Aggs)
			return tick()
		})
	}
	a.scanned = uint64(seen)
	a.Stats.AddBudget(acc.reserved)
	if acc.err != nil {
		return acc.err
	}
	a.out = NewSliceSource(acc.rows(a.GroupBy, a.Aggs))
	return a.out.Open()
}

// numericOnly reports whether every aggregate derives from count and
// sum over a numeric column (Count, Sum, Avg).
func (a *TableAggregate) numericOnly() bool {
	schema := a.Table.Schema()
	for _, spec := range a.Aggs {
		switch spec.Func {
		case AggCount:
		case AggSum, AggAvg:
			switch schema.Columns[spec.Col].Kind {
			case types.KindInt64, types.KindFloat64, types.KindDate, types.KindBool:
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

// numericGrouped executes via the view's vectorized kernel.
func (a *TableAggregate) numericGrouped(v *core.View) ([][]types.Value, error) {
	schema := a.Table.Schema()
	var dataCols []int
	aIdx := make([]int, len(a.Aggs))
	remap := map[int]int{}
	for i, spec := range a.Aggs {
		if spec.Func == AggCount {
			aIdx[i] = -1
			continue
		}
		p, ok := remap[spec.Col]
		if !ok {
			p = len(dataCols)
			dataCols = append(dataCols, spec.Col)
			remap[spec.Col] = p
		}
		aIdx[i] = p
	}
	groups, err := v.AggregateNumeric(a.GroupBy[0], dataCols)
	if err != nil {
		return nil, err
	}
	out := make([][]types.Value, 0, len(groups))
	for _, g := range groups {
		a.scanned += uint64(g.Count)
		row := make([]types.Value, 0, 1+len(a.Aggs))
		row = append(row, g.Key)
		for i, spec := range a.Aggs {
			switch spec.Func {
			case AggCount:
				row = append(row, types.Int(g.Count))
			case AggSum:
				k := aIdx[i]
				if g.Cnt[k] == 0 {
					// Match aggState semantics: an all-NULL sum is 0.
					row = append(row, types.Int(0))
				} else if schema.Columns[spec.Col].Kind == types.KindFloat64 {
					row = append(row, types.Float(g.SumF[k]))
				} else {
					row = append(row, types.Int(g.SumI[k]))
				}
			case AggAvg:
				k := aIdx[i]
				if g.Cnt[k] == 0 {
					row = append(row, types.Null)
				} else {
					total := g.SumF[k] + float64(g.SumI[k])
					row = append(row, types.Float(total/float64(g.Cnt[k])))
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// spaceStates is the accumulator of one code space: a flat array of
// aggState, len(aggs) entries per code, plus a NULL-group slot.
type spaceStates struct {
	states []aggState
	seen   []bool
	null   []aggState
	hasNul bool
}

func (sp *spaceStates) grow(code int, naggs int) {
	need := (code + 1) * naggs
	for len(sp.states) < need {
		sp.states = append(sp.states, aggState{})
	}
	for len(sp.seen) <= code {
		sp.seen = append(sp.seen, false)
	}
}

func (a *TableAggregate) groupedByCode(v *core.View) ([][]types.Value, error) {
	naggs := len(a.Aggs)
	dataCols := make([]int, 0, naggs)
	aIdx := make([]int, naggs)
	remap := map[int]int{}
	for i, spec := range a.Aggs {
		if spec.Func == AggCount {
			aIdx[i] = -1
			continue
		}
		p, ok := remap[spec.Col]
		if !ok {
			p = len(dataCols)
			dataCols = append(dataCols, spec.Col)
			remap[spec.Col] = p
		}
		aIdx[i] = p
	}

	var spaces []*spaceStates
	meter := a.meter()
	var scanErr error
	seen := 0
	meta := v.ScanGrouped(a.GroupBy[0], dataCols, func(space int, code int32, vals []types.Value) bool {
		seen++
		if a.Ctx != nil && seen%ctxCheckStride == 0 {
			if err := a.Ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		for space >= len(spaces) {
			spaces = append(spaces, &spaceStates{})
		}
		sp := spaces[space]
		var states []aggState
		if code < 0 {
			if !sp.hasNul {
				sp.null = make([]aggState, naggs)
				sp.hasNul = true
			}
			states = sp.null
		} else {
			before := len(sp.states)
			sp.grow(int(code), naggs)
			if grown := len(sp.states) - before; grown > 0 {
				if err := meter.Reserve(int64(grown) * aggStateBytes); err != nil {
					scanErr = err
					return false
				}
				a.Stats.AddBudget(int64(grown) * aggStateBytes)
			}
			sp.seen[code] = true
			states = sp.states[int(code)*naggs : (int(code)+1)*naggs]
		}
		for i, spec := range a.Aggs {
			var val types.Value
			if aIdx[i] >= 0 {
				val = vals[aIdx[i]]
			}
			states[i].add(spec.Func, val)
		}
		return true
	})
	a.scanned = uint64(seen)
	if scanErr != nil {
		return nil, scanErr
	}

	// Merge per-space partials by group value (group cardinality is
	// small relative to row count, so hashing here is negligible).
	type finalGroup struct {
		key    types.Value
		states []aggState
	}
	byValue := map[types.Value]*finalGroup{}
	var order []*finalGroup
	var nullGroup *finalGroup
	fold := func(key types.Value, isNull bool, states []aggState) {
		var g *finalGroup
		if isNull {
			if nullGroup == nil {
				nullGroup = &finalGroup{key: types.Null, states: make([]aggState, naggs)}
				order = append(order, nullGroup)
			}
			g = nullGroup
		} else {
			g = byValue[key]
			if g == nil {
				g = &finalGroup{key: key, states: make([]aggState, naggs)}
				byValue[key] = g
				order = append(order, g)
			}
		}
		for i := range states {
			g.states[i].merge(&states[i])
		}
	}
	for si, sp := range spaces {
		if sp == nil {
			continue
		}
		for code := range sp.seen {
			if !sp.seen[code] {
				continue
			}
			val := meta[si].Resolve(uint32(code))
			fold(val, false, sp.states[code*naggs:(code+1)*naggs])
		}
		if sp.hasNul {
			fold(types.Null, true, sp.null)
		}
	}
	out := make([][]types.Value, 0, len(order))
	for _, g := range order {
		row := make([]types.Value, 0, 1+naggs)
		row = append(row, g.key)
		for i, spec := range a.Aggs {
			row = append(row, g.states[i].result(spec.Func))
		}
		out = append(out, row)
	}
	return out, nil
}

// Next implements Iterator.
func (a *TableAggregate) Next() ([]types.Value, bool, error) {
	if a.out == nil {
		return nil, false, ErrNotOpen
	}
	return a.out.Next()
}

// Close implements Iterator.
func (a *TableAggregate) Close() error {
	if a.out != nil {
		return a.out.Close()
	}
	return nil
}

// RowStoreAggregate is the equivalent fused scan-aggregate over the
// update-in-place baseline, keeping the E08 comparison symmetric.
type RowStoreAggregate struct {
	Store   *rowstore.Store
	Pred    expr.Predicate
	GroupBy []int
	Aggs    []Agg

	out *SliceSource
}

// Open implements Iterator.
func (a *RowStoreAggregate) Open() error {
	acc := newGroupAcc(len(a.GroupBy), a.Aggs)
	a.Store.Scan(func(_ types.RowID, row []types.Value) bool {
		if a.Pred == nil || a.Pred.Eval(row) {
			acc.add(row, a.GroupBy, a.Aggs)
		}
		return true
	})
	a.out = NewSliceSource(acc.rows(a.GroupBy, a.Aggs))
	return a.out.Open()
}

// Next implements Iterator.
func (a *RowStoreAggregate) Next() ([]types.Value, bool, error) {
	if a.out == nil {
		return nil, false, ErrNotOpen
	}
	return a.out.Next()
}

// Close implements Iterator.
func (a *RowStoreAggregate) Close() error {
	if a.out != nil {
		return a.out.Close()
	}
	return nil
}

// neededColumns computes the deduplicated projection for a pure
// aggregation and the positions of group/agg columns within it.
func neededColumns(groupBy []int, aggs []Agg) (cols []int, gIdx []int, aIdx []int) {
	remap := map[int]int{}
	use := func(c int) int {
		if p, ok := remap[c]; ok {
			return p
		}
		p := len(cols)
		cols = append(cols, c)
		remap[c] = p
		return p
	}
	gIdx = make([]int, len(groupBy))
	for i, c := range groupBy {
		gIdx[i] = use(c)
	}
	aIdx = make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == AggCount {
			aIdx[i] = -1
			continue
		}
		aIdx[i] = use(a.Col)
	}
	if len(cols) == 0 {
		// COUNT(*)-only plans still need one physical column to drive
		// the scan.
		cols = append(cols, 0)
	}
	return cols, gIdx, aIdx
}

// aggStateBytes approximates one aggState (plus its share of slice
// slack); groupBytes is the per-group bookkeeping around the key and
// states: map entry, order slot, and the aggGroup header itself.
const (
	aggStateBytes = 112
	groupBytes    = 96
)

// groupAcc is the shared grouping accumulator. When meter is set,
// every newly created group is charged against the statement's memory
// budget; a failed reservation is recorded in err (sticky), and
// callers stop the drain and surface it. Accumulating into existing
// groups never allocates, so the charge-on-create model tracks real
// growth.
type groupAcc struct {
	groups map[uint64][]*aggGroup
	order  []*aggGroup
	keybuf []types.Value
	meter  *budget.Meter
	err    error
	// reserved tallies the bytes charged to the meter, for EXPLAIN
	// ANALYZE memory actuals (0 when no meter is installed).
	reserved int64
}

type aggGroup struct {
	key    []types.Value
	states []aggState
	// First-seen position tag of the parallel drain: the (morsel,
	// row-within-morsel) of the earliest row that opened this group.
	// Sorting merged partials by tag reproduces the sequential
	// first-seen group order. Sequential accumulation leaves both 0.
	tagMorsel, tagRow int
}

// tagBefore orders first-seen tags.
func (g *aggGroup) tagBefore(o *aggGroup) bool {
	if g.tagMorsel != o.tagMorsel {
		return g.tagMorsel < o.tagMorsel
	}
	return g.tagRow < o.tagRow
}

func newGroupAcc(nkeys int, aggs []Agg) *groupAcc {
	return &groupAcc{
		groups: map[uint64][]*aggGroup{},
		keybuf: make([]types.Value, nkeys),
	}
}

func (g *groupAcc) group(aggs []Agg) *aggGroup {
	h := types.HashRow(g.keybuf)
	for _, cand := range g.groups[h] {
		if rowsEqual(cand.key, g.keybuf) {
			return cand
		}
	}
	grp := &aggGroup{key: types.CloneRow(g.keybuf), states: make([]aggState, len(aggs))}
	if g.meter != nil && g.err == nil {
		cost := groupBytes + budget.RowBytes(grp.key) + int64(len(aggs))*aggStateBytes
		if g.err = g.meter.Reserve(cost); g.err == nil {
			g.reserved += cost
		}
	}
	g.groups[h] = append(g.groups[h], grp)
	g.order = append(g.order, grp)
	return grp
}

// add accumulates a full row addressed by original ordinals.
func (g *groupAcc) add(row []types.Value, groupBy []int, aggs []Agg) {
	for i, c := range groupBy {
		g.keybuf[i] = row[c]
	}
	grp := g.group(aggs)
	for i, spec := range aggs {
		var v types.Value
		if spec.Func != AggCount {
			v = row[spec.Col]
		}
		grp.states[i].add(spec.Func, v)
	}
}

// addProjected accumulates an already-projected row via precomputed
// positions.
func (g *groupAcc) addProjected(vals []types.Value, gIdx, aIdx []int, aggs []Agg) {
	for i, p := range gIdx {
		g.keybuf[i] = vals[p]
	}
	grp := g.group(aggs)
	for i, spec := range aggs {
		var v types.Value
		if aIdx[i] >= 0 {
			v = vals[aIdx[i]]
		}
		grp.states[i].add(spec.Func, v)
	}
}

// addTagged is add for the parallel drain: when the row opens a new
// group, the group is tagged with the row's (morsel, row) position.
func (g *groupAcc) addTagged(row []types.Value, groupBy []int, aggs []Agg, tagMorsel, tagRow int) {
	for i, c := range groupBy {
		g.keybuf[i] = row[c]
	}
	before := len(g.order)
	grp := g.group(aggs)
	if len(g.order) > before {
		grp.tagMorsel, grp.tagRow = tagMorsel, tagRow
	}
	for i, spec := range aggs {
		var v types.Value
		if spec.Func != AggCount {
			v = row[spec.Col]
		}
		grp.states[i].add(spec.Func, v)
	}
}

// mergeFrom folds another accumulator's partial groups into this one,
// keeping the earliest first-seen tag per group.
func (g *groupAcc) mergeFrom(other *groupAcc, aggs []Agg) {
	for _, src := range other.order {
		copy(g.keybuf, src.key)
		before := len(g.order)
		dst := g.group(aggs)
		if len(g.order) > before || src.tagBefore(dst) {
			dst.tagMorsel, dst.tagRow = src.tagMorsel, src.tagRow
		}
		for i := range dst.states {
			dst.states[i].merge(&src.states[i])
		}
	}
}

// sortByTag orders the groups by first-seen tag — after merging
// parallel partials this is the sequential scan's first-seen order.
func (g *groupAcc) sortByTag() {
	sort.Slice(g.order, func(a, b int) bool { return g.order[a].tagBefore(g.order[b]) })
}

// rows materializes the results (global aggregates yield one row even
// on empty input).
func (g *groupAcc) rows(groupBy []int, aggs []Agg) [][]types.Value {
	order := g.order
	if len(groupBy) == 0 && len(order) == 0 {
		order = append(order, &aggGroup{states: make([]aggState, len(aggs))})
	}
	out := make([][]types.Value, 0, len(order))
	for _, grp := range order {
		row := make([]types.Value, 0, len(grp.key)+len(aggs))
		row = append(row, grp.key...)
		for i, spec := range aggs {
			row = append(row, grp.states[i].result(spec.Func))
		}
		out = append(out, row)
	}
	return out
}
