package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestOpStatsNilSafe: the disabled state is a nil pointer; every
// method must be a no-op returning zero values.
func TestOpStatsNilSafe(t *testing.T) {
	var s *OpStats
	s.AddOut(5)
	s.AddWall(time.Second)
	s.SetWall(time.Second)
	s.SetRows(5)
	s.AddBudget(100)
	s.SetScan(core.ScanStats{Rows: 9, Workers: 4})
	if s.RowsOut() != 0 || s.Batches() != 0 || s.Wall() != 0 ||
		s.Workers() != 0 || s.Morsels() != 0 {
		t.Fatal("nil OpStats leaked state")
	}
	if s.Touched() {
		t.Fatal("nil OpStats reports touched")
	}
	if s.Actuals() != "" {
		t.Fatalf("nil Actuals = %q", s.Actuals())
	}
}

// TestOpStatsActuals pins the annotation rendering: rows and wall are
// always present, the optional fields only when informative.
func TestOpStatsActuals(t *testing.T) {
	s := &OpStats{}
	if s.Touched() {
		t.Fatal("zero OpStats reports touched")
	}
	s.AddOut(100)
	s.AddOut(28)
	s.SetWall(1234567 * time.Nanosecond)
	if !s.Touched() {
		t.Fatal("recorded OpStats not touched")
	}
	if got, want := s.Actuals(), "rows=128 batches=2 wall=1.235ms"; got != want {
		t.Fatalf("Actuals = %q, want %q", got, want)
	}

	// A scan fold overwrites the scan-shaped fields and unlocks the
	// optional annotations.
	s.SetScan(core.ScanStats{
		Rows: 1000, Batches: 4, ResidualDropped: 24,
		DecodeHits: 3, DecodeMisses: 1,
		Workers: 8, Morsels: 16, CacheBytes: 4096,
	})
	got := s.Actuals()
	for _, want := range []string{
		"rows=1000", "batches=4", "workers=8", "morsels=16",
		"residual-dropped=24", "decode=3/1", "mem=4096B",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Actuals %q missing %q", got, want)
		}
	}

	// A single-worker scan is sequential: no workers annotation.
	seq := &OpStats{}
	seq.SetScan(core.ScanStats{Rows: 10, Batches: 1, Workers: 1})
	if strings.Contains(seq.Actuals(), "workers=") {
		t.Errorf("sequential Actuals %q lists workers", seq.Actuals())
	}
	if !seq.Touched() {
		t.Fatal("scanned-but-zero-wall OpStats not touched")
	}

	// SetRows overwrites (materialized total), AddBudget accumulates
	// on top of the scan's cache bytes.
	s.SetRows(7)
	s.AddBudget(100)
	s.AddBudget(28)
	got = s.Actuals()
	if !strings.HasPrefix(got, "rows=7 ") || !strings.Contains(got, "mem=4224B") {
		t.Errorf("after overwrite Actuals = %q", got)
	}
}
