package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// OpStats are one operator's runtime actuals for EXPLAIN ANALYZE: row
// and batch counts, wall time, the parallel shape, pushdown and
// decode-cache effectiveness, and bytes charged to the statement's
// memory budget. A nil *OpStats is the disabled state — every method
// is nil-safe and costs one branch, so operators carry a Stats field
// unconditionally and the hot path stays clean when collection is off.
//
// Fields are atomics because fused parallel operators update them from
// morsel workers; single-threaded operators pay an uncontended atomic
// per batch, which is noise next to batch processing cost.
type OpStats struct {
	rowsOut, batchesOut atomic.Int64
	wallNanos           atomic.Int64
	workers, morsels    atomic.Int64
	decodeHits          atomic.Int64
	decodeMisses        atomic.Int64
	pushdownDropped     atomic.Int64
	budgetBytes         atomic.Int64
}

// AddOut records one emitted batch of n rows.
func (s *OpStats) AddOut(n int) {
	if s == nil {
		return
	}
	s.rowsOut.Add(int64(n))
	s.batchesOut.Add(1)
}

// AddWall accumulates wall time spent inside the operator.
func (s *OpStats) AddWall(d time.Duration) {
	if s == nil {
		return
	}
	s.wallNanos.Add(int64(d))
}

// SetWall overwrites the wall time with the node-inclusive total (the
// calc executor stamps this around the whole node evaluation).
func (s *OpStats) SetWall(d time.Duration) {
	if s == nil {
		return
	}
	s.wallNanos.Store(int64(d))
}

// SetRows overwrites the row count with the materialized total (calc
// row-operator nodes, whose output is a slice, not batches).
func (s *OpStats) SetRows(n int) {
	if s == nil {
		return
	}
	s.rowsOut.Store(int64(n))
}

// AddBudget records bytes reserved against the statement's memory
// budget on behalf of this operator.
func (s *OpStats) AddBudget(n int64) {
	if s == nil {
		return
	}
	s.budgetBytes.Add(n)
}

// SetScan overwrites the scan-shaped fields from a cursor's totals —
// the authoritative source for scan nodes, including fused paths that
// bypass the scan operator entirely.
func (s *OpStats) SetScan(ss core.ScanStats) {
	if s == nil {
		return
	}
	s.rowsOut.Store(int64(ss.Rows))
	s.batchesOut.Store(int64(ss.Batches))
	s.pushdownDropped.Store(int64(ss.ResidualDropped))
	s.decodeHits.Store(int64(ss.DecodeHits))
	s.decodeMisses.Store(int64(ss.DecodeMisses))
	s.workers.Store(int64(ss.Workers))
	s.morsels.Store(int64(ss.Morsels))
	if ss.CacheBytes > 0 {
		s.budgetBytes.Store(ss.CacheBytes)
	}
}

// RowsOut returns the emitted row count.
func (s *OpStats) RowsOut() int64 {
	if s == nil {
		return 0
	}
	return s.rowsOut.Load()
}

// Batches returns the emitted batch count.
func (s *OpStats) Batches() int64 {
	if s == nil {
		return 0
	}
	return s.batchesOut.Load()
}

// Wall returns the recorded wall time.
func (s *OpStats) Wall() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.wallNanos.Load())
}

// Workers and Morsels return the parallel shape (0 = sequential or
// not a scan).
func (s *OpStats) Workers() int64 {
	if s == nil {
		return 0
	}
	return s.workers.Load()
}

func (s *OpStats) Morsels() int64 {
	if s == nil {
		return 0
	}
	return s.morsels.Load()
}

// Touched reports whether any execution reached this operator — a
// zero-row scan still counts (its batch/wall fields may be zero, but
// SetScan stamps workers).
func (s *OpStats) Touched() bool {
	if s == nil {
		return false
	}
	return s.rowsOut.Load() != 0 || s.batchesOut.Load() != 0 ||
		s.wallNanos.Load() != 0 || s.workers.Load() != 0
}

// Actuals renders the EXPLAIN ANALYZE annotation: always rows and
// wall, the rest only when informative.
func (s *OpStats) Actuals() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rows=%d", s.rowsOut.Load())
	if n := s.batchesOut.Load(); n > 0 {
		fmt.Fprintf(&b, " batches=%d", n)
	}
	fmt.Fprintf(&b, " wall=%s", time.Duration(s.wallNanos.Load()).Round(time.Microsecond))
	if w := s.workers.Load(); w > 1 {
		fmt.Fprintf(&b, " workers=%d", w)
	}
	if m := s.morsels.Load(); m > 0 {
		fmt.Fprintf(&b, " morsels=%d", m)
	}
	if n := s.pushdownDropped.Load(); n > 0 {
		fmt.Fprintf(&b, " residual-dropped=%d", n)
	}
	if h, m := s.decodeHits.Load(), s.decodeMisses.Load(); h+m > 0 {
		fmt.Fprintf(&b, " decode=%d/%d", h, m)
	}
	if n := s.budgetBytes.Load(); n > 0 {
		fmt.Fprintf(&b, " mem=%dB", n)
	}
	return b.String()
}
