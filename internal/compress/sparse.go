package compress

import (
	"sort"

	"repro/internal/bitpack"
)

// Sparse is dominant-value coding: the most frequent code is stored
// implicitly; only the positions and codes of the exceptions are kept.
// It wins on columns dominated by one value (status flags, default
// country, NULL-heavy attributes).
type Sparse struct {
	defaultCode uint32
	positions   []int32 // exception positions, ascending
	codes       *bitpack.Vector
	n           int
}

// NewSparse builds a sparse encoding, or returns nil when the column
// has no codes (Choose falls back to other schemes).
func NewSparse(codes []uint32, cardinality int) *Sparse {
	if len(codes) == 0 {
		return nil
	}
	freq := make(map[uint32]int)
	for _, c := range codes {
		freq[c]++
	}
	var def uint32
	best := -1
	for c, n := range freq {
		if n > best || (n == best && c < def) {
			def, best = c, n
		}
	}
	s := &Sparse{defaultCode: def, codes: bitpack.New(cardinality), n: len(codes)}
	for i, c := range codes {
		if c != def {
			s.positions = append(s.positions, int32(i))
			s.codes.Append(c)
		}
	}
	return s
}

// SparseFromParts reconstructs a sparse encoding from serialized state.
func SparseFromParts(defaultCode uint32, positions []int32, codes *bitpack.Vector, n int) *Sparse {
	return &Sparse{defaultCode: defaultCode, positions: positions, codes: codes, n: n}
}

// Parts exposes the default code, exception positions, and exception
// codes (serialization).
func (s *Sparse) Parts() (uint32, []int32, *bitpack.Vector) {
	return s.defaultCode, s.positions, s.codes
}

func (s *Sparse) Len() int       { return s.n }
func (s *Sparse) Scheme() Scheme { return SchemeSparse }
func (s *Sparse) MemSize() int   { return len(s.positions)*4 + s.codes.MemSize() + 32 }

// exceptionAt returns the index into positions of the first exception
// at or after position i.
func (s *Sparse) exceptionAt(i int) int {
	return sort.Search(len(s.positions), func(j int) bool { return int(s.positions[j]) >= i })
}

func (s *Sparse) Get(i int) uint32 {
	if i < 0 || i >= s.n {
		panic("compress: sparse index out of range")
	}
	j := s.exceptionAt(i)
	if j < len(s.positions) && int(s.positions[j]) == i {
		return s.codes.Get(j)
	}
	return s.defaultCode
}

func (s *Sparse) DecodeBlock(start int, out []uint32) int {
	if start < 0 || start >= s.n || len(out) == 0 {
		return 0
	}
	n := s.n - start
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = s.defaultCode
	}
	for j := s.exceptionAt(start); j < len(s.positions) && int(s.positions[j]) < start+n; j++ {
		out[int(s.positions[j])-start] = s.codes.Get(j)
	}
	return n
}

func (s *Sparse) ScanEqual(target uint32, from, to int, hits []int) []int {
	return s.ScanRange(target, target, from, to, hits)
}

func (s *Sparse) ScanRange(lo, hi uint32, from, to int, hits []int) []int {
	if lo > hi {
		return hits
	}
	if from < 0 {
		from = 0
	}
	if to > s.n {
		to = s.n
	}
	if from >= to {
		return hits
	}
	defMatches := s.defaultCode >= lo && s.defaultCode <= hi
	j := s.exceptionAt(from)
	if defMatches {
		// Emit every position, substituting exception verdicts.
		for p := from; p < to; p++ {
			if j < len(s.positions) && int(s.positions[j]) == p {
				if c := s.codes.Get(j); c >= lo && c <= hi {
					hits = append(hits, p)
				}
				j++
			} else {
				hits = append(hits, p)
			}
		}
		return hits
	}
	// Only exceptions can match: skip straight through them.
	for ; j < len(s.positions) && int(s.positions[j]) < to; j++ {
		if c := s.codes.Get(j); c >= lo && c <= hi {
			hits = append(hits, int(s.positions[j]))
		}
	}
	return hits
}
