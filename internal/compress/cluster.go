package compress

import (
	"repro/internal/bitpack"
)

// clusterBlock is the fixed block size of the cluster encoding.
const clusterBlock = 1024

// Cluster is block-wise coding: the column is cut into fixed blocks;
// a block whose codes are all equal is stored as that single code,
// any other block is stored bit-packed. Cluster coding captures
// locally sorted data that RLE's global runs miss ([10]).
type Cluster struct {
	single []uint64 // per block: code<<1|1 if single-valued, else offset<<1 into packed
	packed *bitpack.Vector
	n      int
}

// NewCluster builds a cluster encoding of codes.
func NewCluster(codes []uint32, cardinality int) *Cluster {
	c := &Cluster{packed: bitpack.New(cardinality), n: len(codes)}
	for b := 0; b < len(codes); b += clusterBlock {
		end := b + clusterBlock
		if end > len(codes) {
			end = len(codes)
		}
		uniform := true
		for i := b + 1; i < end; i++ {
			if codes[i] != codes[b] {
				uniform = false
				break
			}
		}
		if uniform {
			c.single = append(c.single, uint64(codes[b])<<1|1)
		} else {
			c.single = append(c.single, uint64(c.packed.Len())<<1)
			c.packed.AppendAll(codes[b:end])
		}
	}
	return c
}

// ClusterFromParts reconstructs a cluster encoding from serialized
// state.
func ClusterFromParts(single []uint64, packed *bitpack.Vector, n int) *Cluster {
	return &Cluster{single: single, packed: packed, n: n}
}

// Parts exposes the block directory and the packed spill vector
// (serialization).
func (c *Cluster) Parts() ([]uint64, *bitpack.Vector) { return c.single, c.packed }

func (c *Cluster) Len() int       { return c.n }
func (c *Cluster) Scheme() Scheme { return SchemeCluster }
func (c *Cluster) MemSize() int   { return len(c.single)*8 + c.packed.MemSize() + 24 }

func (c *Cluster) Get(i int) uint32 {
	if i < 0 || i >= c.n {
		panic("compress: cluster index out of range")
	}
	e := c.single[i/clusterBlock]
	if e&1 == 1 {
		return uint32(e >> 1)
	}
	return c.packed.Get(int(e>>1) + i%clusterBlock)
}

func (c *Cluster) DecodeBlock(start int, out []uint32) int {
	if start < 0 || start >= c.n || len(out) == 0 {
		return 0
	}
	n := c.n - start
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] = c.Get(start + i)
	}
	return n
}

func (c *Cluster) ScanEqual(target uint32, from, to int, hits []int) []int {
	return c.ScanRange(target, target, from, to, hits)
}

func (c *Cluster) ScanRange(lo, hi uint32, from, to int, hits []int) []int {
	if lo > hi {
		return hits
	}
	if from < 0 {
		from = 0
	}
	if to > c.n {
		to = c.n
	}
	for b := from / clusterBlock * clusterBlock; b < to; b += clusterBlock {
		end := b + clusterBlock
		if end > c.n {
			end = c.n
		}
		s, e := b, end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		entry := c.single[b/clusterBlock]
		if entry&1 == 1 {
			// Uniform block: match or skip wholesale.
			if code := uint32(entry >> 1); code >= lo && code <= hi {
				for p := s; p < e; p++ {
					hits = append(hits, p)
				}
			}
			continue
		}
		off := int(entry >> 1)
		for p := s; p < e; p++ {
			if code := c.packed.Get(off + p - b); code >= lo && code <= hi {
				hits = append(hits, p)
			}
		}
	}
	return hits
}
