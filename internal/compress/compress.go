// Package compress implements the value-index compression schemes of
// the main store. On top of dictionary encoding, "a combination of
// different compression techniques — ranging from simple run-length
// coding schemes to more complex compression techniques — are applied
// to further reduce the main memory footprint" (paper §3, citing
// [9, 10]). The package offers:
//
//   - Plain: bit-packed codes (the baseline every scheme must beat),
//   - RLE: run-length coding for sorted or clustered columns,
//   - Sparse: dominant-value coding with an exception list,
//   - Cluster: fixed-size blocks, single-value blocks stored once.
//
// Choose picks the smallest encoding for a column, the cost-based
// decision the re-sorting merge relies on (§4.2).
package compress

import (
	"fmt"

	"repro/internal/bitpack"
)

// Scheme identifies a compression scheme.
type Scheme uint8

const (
	// SchemePlain stores every code bit-packed.
	SchemePlain Scheme = iota
	// SchemeRLE stores (start-position, code) runs.
	SchemeRLE
	// SchemeSparse stores the dominant code implicitly plus exceptions.
	SchemeSparse
	// SchemeCluster stores equal-valued fixed-size blocks once.
	SchemeCluster
)

func (s Scheme) String() string {
	switch s {
	case SchemePlain:
		return "plain"
	case SchemeRLE:
		return "rle"
	case SchemeSparse:
		return "sparse"
	case SchemeCluster:
		return "cluster"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Encoding is a read-only compressed sequence of dictionary codes.
// All schemes support positional access (the column store's
// positional addressing, §4.2) and predicate scans over code ranges.
type Encoding interface {
	// Len returns the number of codes.
	Len() int
	// Get returns the code at position i.
	Get(i int) uint32
	// DecodeBlock fills out with codes starting at start, returning
	// the count decoded (vectorized access, §3.1).
	DecodeBlock(start int, out []uint32) int
	// ScanEqual appends positions in [from,to) whose code equals
	// target.
	ScanEqual(target uint32, from, to int, hits []int) []int
	// ScanRange appends positions in [from,to) whose code lies in
	// [lo,hi].
	ScanRange(lo, hi uint32, from, to int, hits []int) []int
	// MemSize approximates the heap footprint in bytes.
	MemSize() int
	// Scheme identifies the encoding.
	Scheme() Scheme
}

// Choose returns the smallest encoding of codes, trying every scheme.
// cardinality is the dictionary size (for bit widths).
func Choose(codes []uint32, cardinality int) Encoding {
	best := Encoding(NewPlain(codes, cardinality))
	if r := NewRLE(codes, cardinality); r.MemSize() < best.MemSize() {
		best = r
	}
	if s := NewSparse(codes, cardinality); s != nil && s.MemSize() < best.MemSize() {
		best = s
	}
	if c := NewCluster(codes, cardinality); c.MemSize() < best.MemSize() {
		best = c
	}
	return best
}

// Plain is the uncompressed (but bit-packed) scheme.
type Plain struct {
	v *bitpack.Vector
}

// NewPlain builds a plain encoding.
func NewPlain(codes []uint32, cardinality int) *Plain {
	v := bitpack.New(cardinality)
	v.AppendAll(codes)
	return &Plain{v: v}
}

// PlainFromVector wraps an existing bit-packed vector.
func PlainFromVector(v *bitpack.Vector) *Plain { return &Plain{v: v} }

// Vector exposes the underlying bit-packed vector (serialization).
func (p *Plain) Vector() *bitpack.Vector { return p.v }

func (p *Plain) Len() int         { return p.v.Len() }
func (p *Plain) Get(i int) uint32 { return p.v.Get(i) }
func (p *Plain) MemSize() int     { return p.v.MemSize() }
func (p *Plain) Scheme() Scheme   { return SchemePlain }
func (p *Plain) DecodeBlock(start int, out []uint32) int {
	return p.v.DecodeBlock(start, out)
}
func (p *Plain) ScanEqual(target uint32, from, to int, hits []int) []int {
	return p.v.ScanEqual(target, from, to, hits)
}
func (p *Plain) ScanRange(lo, hi uint32, from, to int, hits []int) []int {
	return p.v.ScanRange(lo, hi, from, to, hits)
}
