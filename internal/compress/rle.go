package compress

import (
	"sort"

	"repro/internal/bitpack"
)

// RLE is run-length coding: maximal runs of equal codes are stored as
// (start position, code). Positional access binary-searches the run
// starts. RLE shines after a re-sorting merge has clustered equal
// values (§4.2).
type RLE struct {
	starts []int32 // run start positions, ascending
	codes  *bitpack.Vector
	n      int
}

// NewRLE builds a run-length encoding of codes.
func NewRLE(codes []uint32, cardinality int) *RLE {
	r := &RLE{codes: bitpack.New(cardinality), n: len(codes)}
	for i, c := range codes {
		if i == 0 || codes[i-1] != c {
			r.starts = append(r.starts, int32(i))
			r.codes.Append(c)
		}
	}
	return r
}

// RLEFromRuns reconstructs an RLE encoding from serialized state.
func RLEFromRuns(starts []int32, codes *bitpack.Vector, n int) *RLE {
	return &RLE{starts: starts, codes: codes, n: n}
}

// Runs exposes the run starts and codes (serialization).
func (r *RLE) Runs() ([]int32, *bitpack.Vector) { return r.starts, r.codes }

// NumRuns returns the number of runs.
func (r *RLE) NumRuns() int { return len(r.starts) }

func (r *RLE) Len() int       { return r.n }
func (r *RLE) Scheme() Scheme { return SchemeRLE }
func (r *RLE) MemSize() int   { return len(r.starts)*4 + r.codes.MemSize() + 24 }

// run returns the index of the run containing position i.
func (r *RLE) run(i int) int {
	return sort.Search(len(r.starts), func(j int) bool { return int(r.starts[j]) > i }) - 1
}

func (r *RLE) Get(i int) uint32 {
	if i < 0 || i >= r.n {
		panic("compress: RLE index out of range")
	}
	return r.codes.Get(r.run(i))
}

// runEnd returns the exclusive end position of run j.
func (r *RLE) runEnd(j int) int {
	if j+1 < len(r.starts) {
		return int(r.starts[j+1])
	}
	return r.n
}

func (r *RLE) DecodeBlock(start int, out []uint32) int {
	if start < 0 || start >= r.n || len(out) == 0 {
		return 0
	}
	n := r.n - start
	if n > len(out) {
		n = len(out)
	}
	j := r.run(start)
	pos := start
	for pos < start+n {
		c := r.codes.Get(j)
		end := r.runEnd(j)
		if end > start+n {
			end = start + n
		}
		for ; pos < end; pos++ {
			out[pos-start] = c
		}
		j++
	}
	return n
}

func (r *RLE) ScanEqual(target uint32, from, to int, hits []int) []int {
	return r.ScanRange(target, target, from, to, hits)
}

func (r *RLE) ScanRange(lo, hi uint32, from, to int, hits []int) []int {
	if lo > hi || r.n == 0 {
		return hits
	}
	if from < 0 {
		from = 0
	}
	if to > r.n {
		to = r.n
	}
	if from >= to {
		return hits
	}
	for j := r.run(from); j < len(r.starts) && int(r.starts[j]) < to; j++ {
		if c := r.codes.Get(j); c < lo || c > hi {
			continue
		}
		s, e := int(r.starts[j]), r.runEnd(j)
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		for p := s; p < e; p++ {
			hits = append(hits, p)
		}
	}
	return hits
}
