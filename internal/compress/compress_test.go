package compress

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// refScanRange is the trivially correct scan all encodings must match.
func refScanRange(codes []uint32, lo, hi uint32, from, to int) []int {
	var hits []int
	if from < 0 {
		from = 0
	}
	if to > len(codes) {
		to = len(codes)
	}
	for i := from; i < to; i++ {
		if codes[i] >= lo && codes[i] <= hi {
			hits = append(hits, i)
		}
	}
	return hits
}

func encodings(codes []uint32, card int) map[string]Encoding {
	m := map[string]Encoding{
		"plain":   NewPlain(codes, card),
		"rle":     NewRLE(codes, card),
		"cluster": NewCluster(codes, card),
	}
	if s := NewSparse(codes, card); s != nil {
		m["sparse"] = s
	}
	return m
}

func checkEncoding(t *testing.T, name string, e Encoding, codes []uint32) {
	t.Helper()
	if e.Len() != len(codes) {
		t.Fatalf("%s: Len = %d, want %d", name, e.Len(), len(codes))
	}
	for i, c := range codes {
		if got := e.Get(i); got != c {
			t.Fatalf("%s: Get(%d) = %d, want %d", name, i, got, c)
		}
	}
	// Block decode across odd boundaries.
	buf := make([]uint32, 100)
	for start := 0; start < len(codes); start += 73 {
		n := e.DecodeBlock(start, buf)
		for i := 0; i < n; i++ {
			if buf[i] != codes[start+i] {
				t.Fatalf("%s: DecodeBlock(%d)[%d] = %d, want %d", name, start, i, buf[i], codes[start+i])
			}
		}
	}
	// Scans against the reference on a few windows.
	windows := [][2]int{{0, len(codes)}, {7, len(codes) / 2}, {len(codes) / 3, len(codes)}}
	for _, w := range windows {
		for _, r := range [][2]uint32{{0, 0}, {1, 3}, {5, 100}, {2, 2}} {
			want := refScanRange(codes, r[0], r[1], w[0], w[1])
			got := e.ScanRange(r[0], r[1], w[0], w[1], nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: ScanRange(%v,%v) = %v, want %v", name, r, w, got, want)
			}
			wantEq := refScanRange(codes, r[0], r[0], w[0], w[1])
			gotEq := e.ScanEqual(r[0], w[0], w[1], nil)
			if !reflect.DeepEqual(gotEq, wantEq) {
				t.Fatalf("%s: ScanEqual(%d,%v) = %v, want %v", name, r[0], w, gotEq, wantEq)
			}
		}
	}
}

func TestAllSchemesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	codes := make([]uint32, 3000)
	for i := range codes {
		codes[i] = uint32(rng.Intn(8))
	}
	for name, e := range encodings(codes, 8) {
		checkEncoding(t, name, e, codes)
	}
}

func TestAllSchemesSorted(t *testing.T) {
	codes := make([]uint32, 4000)
	for i := range codes {
		codes[i] = uint32(i / 500)
	}
	for name, e := range encodings(codes, 8) {
		checkEncoding(t, name, e, codes)
	}
	// Sorted data: RLE must be dramatically smaller than plain.
	rle, plain := NewRLE(codes, 8), NewPlain(codes, 8)
	if rle.MemSize()*10 > plain.MemSize() {
		t.Errorf("RLE %dB not ≪ plain %dB on sorted data", rle.MemSize(), plain.MemSize())
	}
	if rle.NumRuns() != 8 {
		t.Errorf("NumRuns = %d, want 8", rle.NumRuns())
	}
}

func TestAllSchemesDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	codes := make([]uint32, 5000)
	for i := range codes {
		if rng.Intn(100) == 0 {
			codes[i] = uint32(1 + rng.Intn(7))
		}
	}
	for name, e := range encodings(codes, 8) {
		checkEncoding(t, name, e, codes)
	}
	sp, plain := NewSparse(codes, 8), NewPlain(codes, 8)
	if sp.MemSize()*5 > plain.MemSize() {
		t.Errorf("sparse %dB not ≪ plain %dB on dominant data", sp.MemSize(), plain.MemSize())
	}
}

func TestClusterLocallyUniform(t *testing.T) {
	// Blocks of 1024 equal values but globally non-monotonic: cluster
	// territory.
	var codes []uint32
	vals := []uint32{5, 1, 5, 3, 1, 7}
	for _, v := range vals {
		for i := 0; i < 1024; i++ {
			codes = append(codes, v)
		}
	}
	for name, e := range encodings(codes, 8) {
		checkEncoding(t, name, e, codes)
	}
	cl, plain := NewCluster(codes, 8), NewPlain(codes, 8)
	if cl.MemSize()*10 > plain.MemSize() {
		t.Errorf("cluster %dB not ≪ plain %dB on block-uniform data", cl.MemSize(), plain.MemSize())
	}
}

func TestChoosePicksExpectedScheme(t *testing.T) {
	sorted := make([]uint32, 4096)
	for i := range sorted {
		sorted[i] = uint32(i / 512)
	}
	if got := Choose(sorted, 8).Scheme(); got != SchemeRLE {
		t.Errorf("sorted data chose %v, want rle", got)
	}

	dominant := make([]uint32, 4096)
	dominant[100] = 3
	dominant[2000] = 5
	got := Choose(dominant, 8).Scheme()
	if got != SchemeSparse && got != SchemeRLE {
		t.Errorf("dominant data chose %v, want sparse or rle", got)
	}

	rng := rand.New(rand.NewSource(3))
	random := make([]uint32, 4096)
	for i := range random {
		random[i] = uint32(rng.Intn(200))
	}
	if got := Choose(random, 200).Scheme(); got != SchemePlain {
		t.Errorf("random data chose %v, want plain", got)
	}
}

func TestChooseNeverBiggerThanPlain(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		codes := make([]uint32, int(n)%2000)
		for i := range codes {
			codes[i] = uint32(rng.Intn(16))
		}
		e := Choose(codes, 16)
		if e.MemSize() > NewPlain(codes, 16).MemSize() {
			return false
		}
		for i, c := range codes {
			if e.Get(i) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyColumn(t *testing.T) {
	for name, e := range map[string]Encoding{
		"plain":   NewPlain(nil, 1),
		"rle":     NewRLE(nil, 1),
		"cluster": NewCluster(nil, 1),
	} {
		if e.Len() != 0 {
			t.Errorf("%s: empty Len = %d", name, e.Len())
		}
		if hits := e.ScanRange(0, 10, 0, 0, nil); len(hits) != 0 {
			t.Errorf("%s: scan of empty = %v", name, hits)
		}
		if n := e.DecodeBlock(0, make([]uint32, 4)); n != 0 {
			t.Errorf("%s: decode of empty = %d", name, n)
		}
	}
	if NewSparse(nil, 1) != nil {
		t.Error("NewSparse(nil) should be nil")
	}
	if Choose(nil, 1).Len() != 0 {
		t.Error("Choose(nil) should produce an empty encoding")
	}
}

func TestSparseTieBreakDeterministic(t *testing.T) {
	codes := []uint32{1, 2, 1, 2}
	a, _, _ := NewSparse(codes, 4).Parts()
	b, _, _ := NewSparse(codes, 4).Parts()
	if a != b {
		t.Error("sparse default code not deterministic on frequency ties")
	}
	if a != 1 {
		t.Errorf("tie should pick smallest code, got %d", a)
	}
}

func TestRoundtripThroughParts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := make([]uint32, 2500)
	for i := range codes {
		codes[i] = uint32(rng.Intn(6))
	}
	sort.Slice(codes[:1000], func(a, b int) bool { return codes[a] < codes[b] })

	r := NewRLE(codes, 6)
	starts, rcodes := r.Runs()
	r2 := RLEFromRuns(starts, rcodes, r.Len())
	checkEncoding(t, "rle-roundtrip", r2, codes)

	s := NewSparse(codes, 6)
	def, pos, scodes := s.Parts()
	s2 := SparseFromParts(def, pos, scodes, s.Len())
	checkEncoding(t, "sparse-roundtrip", s2, codes)

	c := NewCluster(codes, 6)
	single, packed := c.Parts()
	c2 := ClusterFromParts(single, packed, c.Len())
	checkEncoding(t, "cluster-roundtrip", c2, codes)
}
