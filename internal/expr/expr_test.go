package expr

import (
	"testing"

	"repro/internal/types"
)

func row(vs ...types.Value) []types.Value { return vs }

func TestCmpAllOps(t *testing.T) {
	r := row(types.Int(5))
	cases := []struct {
		op   Op
		val  int64
		want bool
	}{
		{OpEq, 5, true}, {OpEq, 6, false},
		{OpNe, 5, false}, {OpNe, 6, true},
		{OpLt, 6, true}, {OpLt, 5, false},
		{OpLe, 5, true}, {OpLe, 4, false},
		{OpGt, 4, true}, {OpGt, 5, false},
		{OpGe, 5, true}, {OpGe, 6, false},
	}
	for _, c := range cases {
		p := Cmp{Col: 0, Op: c.op, Val: types.Int(c.val)}
		if got := p.Eval(r); got != c.want {
			t.Errorf("%s on 5: got %v", p, got)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	r := row(types.Null)
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if (Cmp{Col: 0, Op: op, Val: types.Int(1)}).Eval(r) {
			t.Errorf("NULL %v 1 should be false", op)
		}
	}
	if (Cmp{Col: 0, Op: OpEq, Val: types.Null}).Eval(row(types.Int(1))) {
		t.Error("1 = NULL should be false")
	}
}

func TestBetween(t *testing.T) {
	p := Between{Col: 0, Lo: types.Int(10), Hi: types.Int(20), LoInc: true, HiInc: false}
	for v, want := range map[int64]bool{9: false, 10: true, 15: true, 20: false, 21: false} {
		if got := p.Eval(row(types.Int(v))); got != want {
			t.Errorf("Between(%d) = %v, want %v", v, got, want)
		}
	}
	unbounded := Between{Col: 0, Lo: types.Null, Hi: types.Int(5), HiInc: true}
	if !unbounded.Eval(row(types.Int(-100))) {
		t.Error("unbounded lo should accept -100")
	}
	if (Between{Col: 0, Lo: types.Null, Hi: types.Null}).Eval(row(types.Null)) {
		t.Error("NULL row never matches Between")
	}
}

func TestInLikeIsNull(t *testing.T) {
	in := In{Col: 0, Vals: []types.Value{types.Str("a"), types.Str("c")}}
	if !in.Eval(row(types.Str("c"))) || in.Eval(row(types.Str("b"))) {
		t.Error("In misbehaves")
	}
	if in.Eval(row(types.Null)) {
		t.Error("NULL IN (...) should be false")
	}
	like := Like{Col: 0, Prefix: "Wall"}
	if !like.Eval(row(types.Str("Walldorf"))) || like.Eval(row(types.Str("Berlin"))) {
		t.Error("Like misbehaves")
	}
	if !(IsNull{Col: 0}).Eval(row(types.Null)) || (IsNull{Col: 0}).Eval(row(types.Int(1))) {
		t.Error("IsNull misbehaves")
	}
	if (IsNull{Col: 0, Neg: true}).Eval(row(types.Null)) {
		t.Error("IS NOT NULL on NULL should be false")
	}
}

func TestBooleanCombinators(t *testing.T) {
	r := row(types.Int(5), types.Str("x"))
	a := Cmp{Col: 0, Op: OpGt, Val: types.Int(3)}
	b := Cmp{Col: 1, Op: OpEq, Val: types.Str("x")}
	c := Cmp{Col: 0, Op: OpLt, Val: types.Int(4)}
	if !(And{a, b}).Eval(r) || (And{a, c}).Eval(r) {
		t.Error("And misbehaves")
	}
	if !(Or{c, b}).Eval(r) || (Or{c, Not{b}}).Eval(r) {
		t.Error("Or misbehaves")
	}
	if !Const(true).Eval(r) || Const(false).Eval(r) {
		t.Error("Const misbehaves")
	}
	if !(Not{c}).Eval(r) {
		t.Error("Not misbehaves")
	}
}

func TestConjunctsFlattens(t *testing.T) {
	a := Cmp{Col: 0, Op: OpEq, Val: types.Int(1)}
	b := Cmp{Col: 1, Op: OpEq, Val: types.Int(2)}
	c := Cmp{Col: 2, Op: OpEq, Val: types.Int(3)}
	got := Conjuncts(And{a, And{b, c}})
	if len(got) != 3 {
		t.Fatalf("Conjuncts = %v", got)
	}
	if got := Conjuncts(a); len(got) != 1 {
		t.Fatalf("single conjunct = %v", got)
	}
	if got := Conjuncts(nil); got != nil {
		t.Fatalf("nil conjuncts = %v", got)
	}
}

func TestPushdown(t *testing.T) {
	p := And{
		Cmp{Col: 0, Op: OpEq, Val: types.Str("DE")},
		Cmp{Col: 1, Op: OpGe, Val: types.Int(10)},
		Between{Col: 2, Lo: types.Float(1), Hi: types.Float(2), LoInc: true, HiInc: true},
		Like{Col: 3, Prefix: "x"}, // not pushable
		Const(true),               // dropped
	}
	ranges, residual := Pushdown(p)
	if len(ranges) != 3 {
		t.Fatalf("ranges = %v", ranges)
	}
	if ranges[0].Col != 0 || !types.Equal(ranges[0].Lo, types.Str("DE")) || !ranges[0].LoInc || !ranges[0].HiInc {
		t.Errorf("eq range = %+v", ranges[0])
	}
	if ranges[1].Col != 1 || !ranges[1].LoInc || !ranges[1].Hi.IsNull() {
		t.Errorf("ge range = %+v", ranges[1])
	}
	if _, ok := residual.(Like); !ok {
		t.Errorf("residual = %v", residual)
	}

	// Fully pushable → nil residual.
	ranges, residual = Pushdown(Cmp{Col: 0, Op: OpLt, Val: types.Int(9)})
	if residual != nil || len(ranges) != 1 || ranges[0].LoInc || !ranges[0].Lo.IsNull() {
		t.Errorf("lt pushdown: %v %v", ranges, residual)
	}

	// Ne is not pushable.
	ranges, residual = Pushdown(Cmp{Col: 0, Op: OpNe, Val: types.Int(9)})
	if len(ranges) != 0 || residual == nil {
		t.Errorf("ne pushdown: %v %v", ranges, residual)
	}

	// Multi-residual becomes an And.
	_, residual = Pushdown(And{Like{Col: 0, Prefix: "a"}, Like{Col: 1, Prefix: "b"}})
	if _, ok := residual.(And); !ok {
		t.Errorf("multi residual = %T", residual)
	}
}

func TestStringRendering(t *testing.T) {
	p := And{
		Cmp{Col: 0, Op: OpEq, Val: types.Int(1)},
		Or{Like{Col: 1, Prefix: "a"}, Not{IsNull{Col: 2}}},
	}
	s := p.String()
	if s == "" {
		t.Error("empty String()")
	}
	for _, frag := range []string{"col0 = 1", "LIKE", "NOT"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
