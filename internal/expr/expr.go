// Package expr provides the predicate expressions evaluated by table
// scans and filter operators, plus the decomposition helpers the
// optimizer uses to push comparison predicates down onto dictionary
// code ranges (the "special operators working directly on dictionary
// encoded columns" of paper §4.1).
package expr

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Op is a comparison operator.
type Op uint8

const (
	// OpEq is =.
	OpEq Op = iota
	// OpNe is <>.
	OpNe
	// OpLt is <.
	OpLt
	// OpLe is <=.
	OpLe
	// OpGt is >.
	OpGt
	// OpGe is >=.
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Predicate evaluates to a boolean over a row. SQL three-valued logic
// is collapsed: any comparison involving NULL is false (sufficient
// for the workloads reproduced here).
type Predicate interface {
	// Eval reports whether the row satisfies the predicate.
	Eval(row []types.Value) bool
	// String renders the predicate for plans and diagnostics.
	String() string
}

// Cmp compares a column against a constant.
type Cmp struct {
	Col int
	Op  Op
	Val types.Value
}

// Eval implements Predicate.
func (c Cmp) Eval(row []types.Value) bool {
	v := row[c.Col]
	if v.IsNull() || c.Val.IsNull() {
		return false
	}
	r := types.Compare(v, c.Val)
	switch c.Op {
	case OpEq:
		return r == 0
	case OpNe:
		return r != 0
	case OpLt:
		return r < 0
	case OpLe:
		return r <= 0
	case OpGt:
		return r > 0
	case OpGe:
		return r >= 0
	}
	return false
}

func (c Cmp) String() string { return fmt.Sprintf("col%d %v %v", c.Col, c.Op, c.Val) }

// Between tests lo <= col <= hi with configurable inclusivity.
type Between struct {
	Col          int
	Lo, Hi       types.Value // NULL bound = unbounded
	LoInc, HiInc bool
}

// Eval implements Predicate.
func (b Between) Eval(row []types.Value) bool {
	v := row[b.Col]
	if v.IsNull() {
		return false
	}
	if !b.Lo.IsNull() {
		r := types.Compare(v, b.Lo)
		if r < 0 || (r == 0 && !b.LoInc) {
			return false
		}
	}
	if !b.Hi.IsNull() {
		r := types.Compare(v, b.Hi)
		if r > 0 || (r == 0 && !b.HiInc) {
			return false
		}
	}
	return true
}

func (b Between) String() string {
	return fmt.Sprintf("col%d in %s%v,%v%s", b.Col, bracket(b.LoInc, "[", "("), b.Lo, b.Hi, bracket(b.HiInc, "]", ")"))
}

func bracket(inc bool, a, b string) string {
	if inc {
		return a
	}
	return b
}

// In tests membership in a constant list.
type In struct {
	Col  int
	Vals []types.Value
}

// Eval implements Predicate.
func (in In) Eval(row []types.Value) bool {
	v := row[in.Col]
	if v.IsNull() {
		return false
	}
	for _, c := range in.Vals {
		if !c.IsNull() && types.Equal(v, c) {
			return true
		}
	}
	return false
}

func (in In) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("col%d IN (%s)", in.Col, strings.Join(parts, ","))
}

// Like tests a string column against a constant prefix (the LIKE
// 'abc%' pattern, the only LIKE shape the scans accelerate).
type Like struct {
	Col    int
	Prefix string
}

// Eval implements Predicate.
func (l Like) Eval(row []types.Value) bool {
	v := row[l.Col]
	return v.Kind == types.KindString && strings.HasPrefix(v.S, l.Prefix)
}

func (l Like) String() string { return fmt.Sprintf("col%d LIKE %q+%%", l.Col, l.Prefix) }

// IsNull tests a column for SQL NULL.
type IsNull struct {
	Col int
	Neg bool // true = IS NOT NULL
}

// Eval implements Predicate.
func (p IsNull) Eval(row []types.Value) bool { return row[p.Col].IsNull() != p.Neg }

func (p IsNull) String() string {
	if p.Neg {
		return fmt.Sprintf("col%d IS NOT NULL", p.Col)
	}
	return fmt.Sprintf("col%d IS NULL", p.Col)
}

// And is a conjunction.
type And []Predicate

// Eval implements Predicate.
func (a And) Eval(row []types.Value) bool {
	for _, p := range a {
		if !p.Eval(row) {
			return false
		}
	}
	return true
}

func (a And) String() string { return join(a, " AND ") }

// Or is a disjunction.
type Or []Predicate

// Eval implements Predicate.
func (o Or) Eval(row []types.Value) bool {
	for _, p := range o {
		if p.Eval(row) {
			return true
		}
	}
	return false
}

func (o Or) String() string { return join(o, " OR ") }

// Not negates a predicate.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (n Not) Eval(row []types.Value) bool { return !n.P.Eval(row) }

func (n Not) String() string { return "NOT (" + n.P.String() + ")" }

// Const is a constant predicate (TRUE scans everything).
type Const bool

// Eval implements Predicate.
func (c Const) Eval([]types.Value) bool { return bool(c) }

func (c Const) String() string {
	if c {
		return "TRUE"
	}
	return "FALSE"
}

func join(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Conjuncts flattens nested ANDs into a list of conjuncts; a non-AND
// predicate is its own single conjunct.
func Conjuncts(p Predicate) []Predicate {
	if p == nil {
		return nil
	}
	if a, ok := p.(And); ok {
		var out []Predicate
		for _, c := range a {
			out = append(out, Conjuncts(c)...)
		}
		return out
	}
	return []Predicate{p}
}

// ColumnRange is a per-column value range a scan can resolve directly
// in a dictionary: Lo/Hi with inclusivity, NULL bound = unbounded.
type ColumnRange struct {
	Col          int
	Lo, Hi       types.Value
	LoInc, HiInc bool
}

// Pushdown splits a predicate into dictionary-resolvable column
// ranges and a residual predicate evaluated row-at-a-time. Only
// top-level conjuncts of the forms =, <, <=, >, >=, and Between are
// pushed; everything else stays in the residual. residual is nil when
// fully pushed.
func Pushdown(p Predicate) (ranges []ColumnRange, residual Predicate) {
	var rest And
	for _, c := range Conjuncts(p) {
		switch t := c.(type) {
		case Cmp:
			if r, ok := cmpToRange(t); ok {
				ranges = append(ranges, r)
				continue
			}
		case Between:
			ranges = append(ranges, ColumnRange{Col: t.Col, Lo: t.Lo, Hi: t.Hi, LoInc: t.LoInc, HiInc: t.HiInc})
			continue
		case Const:
			if bool(t) {
				continue
			}
		}
		rest = append(rest, c)
	}
	switch len(rest) {
	case 0:
		return ranges, nil
	case 1:
		return ranges, rest[0]
	default:
		return ranges, rest
	}
}

// Columns returns the column ordinals a predicate reads, or ok=false
// when the predicate tree contains a type this walker does not know
// (callers must then assume every column is referenced). Scan
// planners use it to widen a projection just enough for residual
// evaluation.
func Columns(p Predicate) (cols []int, ok bool) {
	seen := map[int]bool{}
	if !collectColumns(p, seen) {
		return nil, false
	}
	for c := range seen {
		cols = append(cols, c)
	}
	return cols, true
}

func collectColumns(p Predicate, seen map[int]bool) bool {
	switch t := p.(type) {
	case nil:
		return true
	case Cmp:
		seen[t.Col] = true
	case Between:
		seen[t.Col] = true
	case In:
		seen[t.Col] = true
	case Like:
		seen[t.Col] = true
	case IsNull:
		seen[t.Col] = true
	case Const:
	case Not:
		return collectColumns(t.P, seen)
	case And:
		for _, c := range t {
			if !collectColumns(c, seen) {
				return false
			}
		}
	case Or:
		for _, c := range t {
			if !collectColumns(c, seen) {
				return false
			}
		}
	default:
		return false
	}
	return true
}

func cmpToRange(c Cmp) (ColumnRange, bool) {
	if c.Val.IsNull() {
		return ColumnRange{}, false
	}
	switch c.Op {
	case OpEq:
		return ColumnRange{Col: c.Col, Lo: c.Val, Hi: c.Val, LoInc: true, HiInc: true}, true
	case OpLt:
		return ColumnRange{Col: c.Col, Hi: c.Val}, true
	case OpLe:
		return ColumnRange{Col: c.Col, Hi: c.Val, HiInc: true}, true
	case OpGt:
		return ColumnRange{Col: c.Col, Lo: c.Val}, true
	case OpGe:
		return ColumnRange{Col: c.Col, Lo: c.Val, LoInc: true}, true
	default:
		return ColumnRange{}, false
	}
}
