package budget

import "context"

type ctxKey struct{}

// WithMeter attaches the statement's meter to ctx so it rides the
// same context plumbing that already carries cancellation into morsel
// dispatch and batch scans.
func WithMeter(ctx context.Context, m *Meter) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, m)
}

// FromContext returns the meter attached to ctx, or nil (= unlimited)
// when there is none or ctx is nil.
func FromContext(ctx context.Context) *Meter {
	if ctx == nil {
		return nil
	}
	m, _ := ctx.Value(ctxKey{}).(*Meter)
	return m
}
