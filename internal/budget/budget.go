// Package budget provides per-statement execution budgets: a byte
// meter that memory-hungry operators (hash join/aggregate builds,
// decode caches) reserve against before allocating, failing the one
// query with a typed error instead of OOMing the whole process.
//
// The meter is reserve-only. A statement's allocations live exactly
// as long as the statement (operator Close releases them to the Go
// heap all at once), so tracking releases would buy nothing: the
// meter is created when the statement starts, charged as operators
// grow state, and discarded when the statement ends. That keeps the
// hot path to one atomic add per reservation and makes the accounting
// trivially race-free across morsel workers.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/types"
)

// ErrBudgetExceeded is the typed failure for a statement that tried
// to grow past its memory budget. Wrapped errors carry the limit and
// high-water mark; match with errors.Is.
var ErrBudgetExceeded = errors.New("statement memory budget exceeded")

// Meter is one statement's byte budget. A nil *Meter is valid and
// means "unlimited": every method is nil-safe so operators can charge
// unconditionally without sprinkling nil checks at call sites.
type Meter struct {
	limit int64
	used  atomic.Int64
}

// NewMeter returns a meter enforcing limit bytes. limit <= 0 returns
// nil (unlimited), so config plumbing can pass zero through.
func NewMeter(limit int64) *Meter {
	if limit <= 0 {
		return nil
	}
	return &Meter{limit: limit}
}

// Reserve charges n bytes against the budget. It returns an error
// wrapping ErrBudgetExceeded once cumulative reservations pass the
// limit. The overshooting reservation is still recorded — the
// statement is already failing, and keeping the counter monotonic
// means Used reports the true high-water attempt.
func (m *Meter) Reserve(n int64) error {
	if m == nil || n <= 0 {
		return nil
	}
	if used := m.used.Add(n); used > m.limit {
		return fmt.Errorf("%w: needed %d bytes, limit %d", ErrBudgetExceeded, used, m.limit)
	}
	return nil
}

// Used returns the bytes reserved so far (0 for a nil meter).
func (m *Meter) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Limit returns the byte limit (0 for a nil meter = unlimited).
func (m *Meter) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}

// valueOverhead approximates the boxed-value bookkeeping around the
// payload: the interface-shaped types.Value plus slice/map slack.
const valueOverhead = 32

// ValueBytes estimates the resident size of one value.
func ValueBytes(v types.Value) int64 {
	if v.Kind == types.KindString {
		return valueOverhead + int64(len(v.S))
	}
	return valueOverhead
}

// RowBytes estimates the resident size of one materialized row.
func RowBytes(row []types.Value) int64 {
	n := int64(valueOverhead) // slice header + cap slack
	for _, v := range row {
		n += ValueBytes(v)
	}
	return n
}
