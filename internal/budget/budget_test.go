package budget

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/types"
)

func TestMeterReserve(t *testing.T) {
	m := NewMeter(100)
	if err := m.Reserve(60); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	if err := m.Reserve(40); err != nil {
		t.Fatalf("exact fill: %v", err)
	}
	err := m.Reserve(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overflow: got %v, want ErrBudgetExceeded", err)
	}
	if m.Used() != 101 {
		t.Fatalf("Used = %d, want 101 (monotonic high-water)", m.Used())
	}
	if m.Limit() != 100 {
		t.Fatalf("Limit = %d", m.Limit())
	}
}

func TestNilMeterIsUnlimited(t *testing.T) {
	var m *Meter
	if err := m.Reserve(1 << 40); err != nil {
		t.Fatalf("nil meter must accept everything: %v", err)
	}
	if m.Used() != 0 || m.Limit() != 0 {
		t.Fatalf("nil meter Used/Limit = %d/%d", m.Used(), m.Limit())
	}
	if NewMeter(0) != nil || NewMeter(-5) != nil {
		t.Fatalf("non-positive limits must mean unlimited")
	}
}

func TestMeterConcurrentReserve(t *testing.T) {
	const (
		workers = 8
		perW    = 1000
	)
	m := NewMeter(workers * perW)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_ = m.Reserve(1)
			}
		}()
	}
	wg.Wait()
	if m.Used() != workers*perW {
		t.Fatalf("Used = %d, want %d", m.Used(), workers*perW)
	}
	if err := m.Reserve(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget should now be exhausted, got %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	m := NewMeter(10)
	ctx := WithMeter(context.Background(), m)
	if got := FromContext(ctx); got != m {
		t.Fatalf("FromContext = %p, want %p", got, m)
	}
	if FromContext(context.Background()) != nil {
		t.Fatalf("bare context should carry no meter")
	}
	if FromContext(nil) != nil {
		t.Fatalf("nil context should carry no meter")
	}
	if got := WithMeter(context.Background(), nil); FromContext(got) != nil {
		t.Fatalf("attaching a nil meter should be a no-op")
	}
}

func TestByteEstimates(t *testing.T) {
	if ValueBytes(types.Int(7)) != valueOverhead {
		t.Fatalf("int estimate")
	}
	s := ValueBytes(types.Str("hello"))
	if s != valueOverhead+5 {
		t.Fatalf("string estimate = %d", s)
	}
	row := []types.Value{types.Int(1), types.Str("ab")}
	if got := RowBytes(row); got != 3*valueOverhead+2 {
		t.Fatalf("row estimate = %d", got)
	}
}
