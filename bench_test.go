// Benchmarks regenerating the paper's evaluation characteristics, one
// group per experiment of DESIGN.md §5 (E01–E12). cmd/hanabench runs
// the full harness with larger workloads and prints the tables
// recorded in EXPERIMENTS.md; these testing.B benches expose the same
// mechanisms as micro-measurements.
package hana_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	hana "repro"
	"repro/internal/engine"
	"repro/internal/workload"
)

// fixture builds a table pre-loaded into a chosen stage.
type fixture struct {
	db  *hana.DB
	tab *hana.Table
	n   int
}

var fixtures sync.Map // key string → *fixture

func stageFixture(b *testing.B, key string, n int, build func() (*hana.DB, *hana.Table)) *fixture {
	b.Helper()
	if f, ok := fixtures.Load(key); ok {
		return f.(*fixture)
	}
	db, tab := build()
	f := &fixture{db: db, tab: tab, n: n}
	fixtures.Store(key, f)
	return f
}

func orderCfg(name string) hana.TableConfig {
	return hana.TableConfig{
		Name: name, Schema: workload.OrderSchema(),
		L1MaxRows: 1 << 30, Compress: true, CompactDicts: true,
	}
}

func loadBulk(db *hana.DB, tab *hana.Table, rows [][]hana.Value) {
	tx := db.Begin(hana.TxnSnapshot)
	if _, err := tab.BulkInsert(tx, rows); err != nil {
		panic(err)
	}
	if err := db.Commit(tx); err != nil {
		panic(err)
	}
}

func drain(tab *hana.Table) {
	for {
		if _, err := tab.MergeL1(); err != nil {
			panic(err)
		}
		if _, err := tab.MergeMain(); err != nil {
			panic(err)
		}
		st := tab.Stats()
		if st.L1Rows == 0 && st.L2Rows == 0 && st.FrozenL2Rows == 0 {
			return
		}
	}
}

const fixtureRows = 50_000

func l1Fixture(b *testing.B) *fixture {
	return stageFixture(b, "l1", fixtureRows, func() (*hana.DB, *hana.Table) {
		db := hana.MustOpen(hana.Options{})
		tab, _ := db.CreateTable(orderCfg("l1orders"))
		gen := workload.NewOrderGen(1, 10_000, 1_000)
		tx := db.Begin(hana.TxnSnapshot)
		for _, r := range gen.Rows(fixtureRows) {
			if _, err := tab.Insert(tx, r); err != nil {
				panic(err)
			}
		}
		db.Commit(tx)
		return db, tab
	})
}

func l2Fixture(b *testing.B) *fixture {
	return stageFixture(b, "l2", fixtureRows, func() (*hana.DB, *hana.Table) {
		db := hana.MustOpen(hana.Options{})
		tab, _ := db.CreateTable(orderCfg("l2orders"))
		loadBulk(db, tab, workload.NewOrderGen(1, 10_000, 1_000).Rows(fixtureRows))
		return db, tab
	})
}

func mainFixture(b *testing.B) *fixture {
	return stageFixture(b, "main", fixtureRows, func() (*hana.DB, *hana.Table) {
		db := hana.MustOpen(hana.Options{})
		cfg := orderCfg("mainorders")
		cfg.Strategy = hana.MergeResort
		tab, _ := db.CreateTable(cfg)
		loadBulk(db, tab, workload.NewOrderGen(1, 10_000, 1_000).Rows(fixtureRows))
		drain(tab)
		return db, tab
	})
}

// --- E01: stage write paths ---

func BenchmarkE01_StageWrite_L1Insert(b *testing.B) {
	db := hana.MustOpen(hana.Options{})
	defer db.Close()
	tab, _ := db.CreateTable(orderCfg("orders"))
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	rows := gen.Rows(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin(hana.TxnSnapshot)
		if _, err := tab.Insert(tx, rows[i]); err != nil {
			b.Fatal(err)
		}
		db.Commit(tx)
	}
}

func BenchmarkE01_StageWrite_L2Bulk(b *testing.B) {
	db := hana.MustOpen(hana.Options{})
	defer db.Close()
	tab, _ := db.CreateTable(orderCfg("orders"))
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	rows := gen.Rows(b.N)
	b.ResetTimer()
	loadBulk(db, tab, rows)
}

// --- E02: incremental L1→L2 merge ---

func BenchmarkE02_L1L2Merge(b *testing.B) {
	const batch = 1_000
	db := hana.MustOpen(hana.Options{})
	defer db.Close()
	cfg := orderCfg("orders")
	cfg.L1MergeBatch = batch
	tab, _ := db.CreateTable(cfg)
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tx := db.Begin(hana.TxnSnapshot)
		for _, r := range gen.Rows(batch) {
			tab.Insert(tx, r)
		}
		db.Commit(tx)
		b.StartTimer()
		if _, err := tab.MergeL1(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(batch)
}

// --- E03: classic merge and dictionary fast paths ---

func benchClassicMerge(b *testing.B, word func(i int) string) {
	schema := hana.MustSchema([]hana.Column{
		{Name: "id", Kind: hana.Int64},
		{Name: "val", Kind: hana.String},
	}, 0)
	const mainN, deltaN = 50_000, 5_000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := hana.MustOpen(hana.Options{})
		tab, _ := db.CreateTable(hana.TableConfig{Name: "t", Schema: schema, Compress: true, CompactDicts: true})
		base := make([][]hana.Value, mainN)
		for j := range base {
			base[j] = hana.Row(hana.Int(int64(j+1)), hana.Str(fmt.Sprintf("word-%04d", j%1000)))
		}
		loadBulk(db, tab, base)
		drain(tab)
		delta := make([][]hana.Value, deltaN)
		for j := range delta {
			delta[j] = hana.Row(hana.Int(int64(mainN+j+1)), hana.Str(word(j)))
		}
		loadBulk(db, tab, delta)
		b.StartTimer()
		if _, err := tab.MergeMain(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}

func BenchmarkE03_ClassicMerge_DisjointDict(b *testing.B) {
	benchClassicMerge(b, func(i int) string { return fmt.Sprintf("fresh-%05d", i%2000) })
}

func BenchmarkE03_ClassicMerge_SubsetDict(b *testing.B) {
	benchClassicMerge(b, func(i int) string { return fmt.Sprintf("word-%04d", i%1000) })
}

func BenchmarkE03_ClassicMerge_AppendDict(b *testing.B) {
	benchClassicMerge(b, func(i int) string { return fmt.Sprintf("zzz-%07d", i) })
}

// --- E03b: column-parallel merge scaling (§4.1) ---

// BenchmarkE03_MergeWorkers measures the same classic L2→main merge
// with the column worker pool at 1/2/4/8 workers. The order schema has
// seven columns, so speedup saturates near min(workers, 7).
func BenchmarkE03_MergeWorkers(b *testing.B) {
	const mainN, deltaN = 60_000, 20_000
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	base := gen.Rows(mainN)
	delta := gen.Rows(deltaN)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := hana.MustOpen(hana.Options{})
				cfg := orderCfg("orders")
				cfg.MergeWorkers = workers
				tab, _ := db.CreateTable(cfg)
				loadBulk(db, tab, base)
				drain(tab)
				loadBulk(db, tab, delta)
				b.StartTimer()
				if _, err := tab.MergeMain(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db.Close()
				b.StartTimer()
			}
			b.SetBytes(mainN + deltaN)
		})
	}
}

// --- E04: classic vs re-sorting merge ---

func benchStrategyMerge(b *testing.B, strat hana.MergeStrategy) {
	gen := workload.NewOrderGen(1, 5_000, 500)
	rows := gen.Rows(30_000)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := hana.MustOpen(hana.Options{})
		cfg := orderCfg("orders")
		cfg.Strategy = strat
		tab, _ := db.CreateTable(cfg)
		loadBulk(db, tab, rows)
		b.StartTimer()
		drain(tab)
		b.StopTimer()
		if i == 0 {
			b.ReportMetric(float64(tab.Stats().MainBytes)/float64(len(rows)), "mainB/row")
		}
		db.Close()
		b.StartTimer()
	}
}

func BenchmarkE04_Merge_Classic(b *testing.B) { benchStrategyMerge(b, hana.MergeClassic) }
func BenchmarkE04_Merge_Resort(b *testing.B)  { benchStrategyMerge(b, hana.MergeResort) }

// --- E05: full vs partial merge with a large passive main ---

func benchDeltaMerge(b *testing.B, strat hana.MergeStrategy) {
	const base = 100_000
	const deltaN = 5_000
	db := hana.MustOpen(hana.Options{})
	defer db.Close()
	cfg := orderCfg("orders")
	cfg.Strategy = strat
	cfg.ActiveMainMax = base
	tab, _ := db.CreateTable(cfg)
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	loadBulk(db, tab, gen.Rows(base))
	drain(tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		loadBulk(db, tab, gen.Rows(deltaN))
		b.StartTimer()
		if _, err := tab.MergeMain(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05_DeltaMerge_Full(b *testing.B)    { benchDeltaMerge(b, hana.MergeClassic) }
func BenchmarkE05_DeltaMerge_Partial(b *testing.B) { benchDeltaMerge(b, hana.MergePartial) }

// --- E06: queries on single vs split main ---

func splitFixture(b *testing.B) *fixture {
	return stageFixture(b, "split", fixtureRows, func() (*hana.DB, *hana.Table) {
		db := hana.MustOpen(hana.Options{})
		cfg := orderCfg("splitorders")
		cfg.Strategy = hana.MergePartial
		cfg.ActiveMainMax = fixtureRows / 2
		tab, _ := db.CreateTable(cfg)
		gen := workload.NewOrderGen(1, 10_000, 1_000)
		loadBulk(db, tab, gen.Rows(fixtureRows/2))
		drain(tab)
		loadBulk(db, tab, gen.Rows(fixtureRows/2))
		drain(tab)
		if tab.Stats().MainParts < 2 {
			panic("split fixture is not split")
		}
		return db, tab
	})
}

func benchPoint(b *testing.B, f *fixture) {
	rng := rand.New(rand.NewSource(9))
	v := f.tab.View(nil)
	defer v.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Get(hana.Int(1+rng.Int63n(int64(f.n)))) == nil {
			b.Fatal("key missing")
		}
	}
}

func benchRange(b *testing.B, f *fixture) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := f.tab.View(nil)
		n := 0
		v.ScanRange(1, hana.Str("C0000"), hana.Str("C0010"), true, false, func(hana.Match) bool {
			n++
			return true
		})
		v.Close()
		if n == 0 {
			b.Fatal("empty range")
		}
	}
}

func BenchmarkE06_PointQuery_SingleMain(b *testing.B) { benchPoint(b, mainFixture(b)) }
func BenchmarkE06_PointQuery_SplitMain(b *testing.B)  { benchPoint(b, splitFixture(b)) }
func BenchmarkE06_RangeQuery_SingleMain(b *testing.B) { benchRange(b, mainFixture(b)) }
func BenchmarkE06_RangeQuery_SplitMain(b *testing.B)  { benchRange(b, splitFixture(b)) }

// --- E07: per-stage read characteristics (Fig. 11 matrix) ---

func benchScanColumn(b *testing.B, f *fixture) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := f.tab.View(nil)
		var sum int64
		v.ScanColumn(5, func(_ hana.RowID, val hana.Value) bool {
			sum += val.I
			return true
		})
		v.Close()
		if sum == 0 {
			b.Fatal("no data")
		}
	}
	b.SetBytes(int64(f.n))
}

func BenchmarkE07_PointQuery_L1(b *testing.B)   { benchPoint(b, l1Fixture(b)) }
func BenchmarkE07_PointQuery_L2(b *testing.B)   { benchPoint(b, l2Fixture(b)) }
func BenchmarkE07_PointQuery_Main(b *testing.B) { benchPoint(b, mainFixture(b)) }
func BenchmarkE07_ColumnScan_L1(b *testing.B)   { benchScanColumn(b, l1Fixture(b)) }
func BenchmarkE07_ColumnScan_L2(b *testing.B)   { benchScanColumn(b, l2Fixture(b)) }
func BenchmarkE07_ColumnScan_Main(b *testing.B) { benchScanColumn(b, mainFixture(b)) }

func BenchmarkE07_MemoryFootprint(b *testing.B) {
	l1, l2, main := l1Fixture(b), l2Fixture(b), mainFixture(b)
	for i := 0; i < b.N; i++ {
		_ = l1.tab.Stats()
	}
	b.ReportMetric(float64(l1.tab.Stats().L1Bytes)/fixtureRows, "L1B/row")
	b.ReportMetric(float64(l2.tab.Stats().L2Bytes)/fixtureRows, "L2B/row")
	b.ReportMetric(float64(main.tab.Stats().MainBytes)/fixtureRows, "mainB/row")
}

// --- E08: the myth — unified table vs row store ---

func BenchmarkE08_MythOLTP_Unified(b *testing.B) {
	db := hana.MustOpen(hana.Options{AutoMerge: true})
	defer db.Close()
	cfg := orderCfg("orders")
	cfg.L1MaxRows = 10_000
	cfg.CheckUnique = true
	tab, _ := db.CreateTable(cfg)
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	ops := gen.Ops(b.N, workload.DefaultMix, 0)
	b.ResetTimer()
	for _, op := range ops {
		tx := db.Begin(hana.TxnSnapshot)
		switch op.Kind {
		case workload.OpInsert:
			tab.Insert(tx, op.Row)
		case workload.OpUpdate:
			tab.UpdateKey(tx, hana.Int(op.Key), op.Row)
		case workload.OpDelete:
			tab.DeleteKey(tx, hana.Int(op.Key))
		case workload.OpPoint:
			v := tab.View(tx)
			v.Get(hana.Int(op.Key))
			v.Close()
		}
		db.Commit(tx)
	}
}

func BenchmarkE08_MythOLAP_Unified(b *testing.B) {
	f := mainFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := hana.NewGraph()
		agg := g.Aggregate(g.Table(f.tab), []int{3},
			hana.Agg{Func: hana.Count}, hana.Agg{Func: hana.Sum, Col: 6})
		if _, err := hana.ExecuteGraph(g, agg, hana.Env{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(f.n))
}

// --- E09: isolation levels ---

func benchIsolation(b *testing.B, level hana.IsolationLevel) {
	f := mainFixture(b)
	rng := rand.New(rand.NewSource(3))
	tx := f.db.Begin(level)
	defer f.db.Commit(tx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := f.tab.View(tx)
		v.Get(hana.Int(1 + rng.Int63n(int64(f.n))))
		v.Close()
	}
}

func BenchmarkE09_PointRead_TxnSnapshot(b *testing.B)  { benchIsolation(b, hana.TxnSnapshot) }
func BenchmarkE09_PointRead_StmtSnapshot(b *testing.B) { benchIsolation(b, hana.StmtSnapshot) }

// --- E10: logging and savepoints ---

func benchInsertWAL(b *testing.B, dir string) {
	db := hana.MustOpen(hana.Options{Dir: dir})
	defer db.Close()
	tab, _ := db.CreateTable(orderCfg("orders"))
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	rows := gen.Rows(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin(hana.TxnSnapshot)
		if _, err := tab.Insert(tx, rows[i]); err != nil {
			b.Fatal(err)
		}
		if err := db.Commit(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_Insert_NoWAL(b *testing.B) { benchInsertWAL(b, "") }

func BenchmarkE10_Insert_WAL(b *testing.B) {
	dir, err := os.MkdirTemp("", "hana-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	benchInsertWAL(b, dir)
}

func BenchmarkE10_Savepoint(b *testing.B) {
	dir, err := os.MkdirTemp("", "hana-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db := hana.MustOpen(hana.Options{Dir: dir})
	defer db.Close()
	tab, _ := db.CreateTable(orderCfg("orders"))
	loadBulk(db, tab, workload.NewOrderGen(1, 10_000, 1_000).Rows(20_000))
	drain(tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Savepoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_Recovery(b *testing.B) {
	dir, err := os.MkdirTemp("", "hana-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db := hana.MustOpen(hana.Options{Dir: dir})
	tab, _ := db.CreateTable(orderCfg("orders"))
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	for _, r := range gen.Rows(10_000) {
		tx := db.Begin(hana.TxnSnapshot)
		tab.Insert(tx, r)
		db.Commit(tx)
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := hana.Open(hana.Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if db2.Table("orders").Stats().L1Rows != 10_000 {
			b.Fatal("recovery incomplete")
		}
		b.StopTimer()
		db2.Close()
		b.StartTimer()
	}
}

// --- E11: calc graphs ---

var starOnce sync.Once
var starDB *hana.DB
var starSales, starCusts, starProds *hana.Table

func starFixture(b *testing.B) {
	starOnce.Do(func() {
		starDB = hana.MustOpen(hana.Options{})
		sg := workload.NewStarGen(7, 2_000, 200, 365)
		mk := func(name string, schema *hana.Schema, rows [][]hana.Value) *hana.Table {
			t, _ := starDB.CreateTable(hana.TableConfig{Name: name, Schema: schema, Compress: true, CompactDicts: true, L1MaxRows: 1 << 30})
			loadBulk(starDB, t, rows)
			drain(t)
			return t
		}
		starSales = mk("sales", workload.SalesSchema(), sg.SaleRows(100_000))
		starCusts = mk("customers", workload.CustomerSchema(), sg.CustomerRows())
		starProds = mk("products", workload.ProductSchema(), sg.ProductRows())
	})
}

func BenchmarkE11_CalcGraph_StarJoin(b *testing.B) {
	starFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := hana.NewGraph()
		sj := g.StarJoin(g.Table(starSales),
			hana.StarDim{In: g.Table(starCusts), KeyCol: 0, FactCol: 1, Payload: []int{2}},
			hana.StarDim{In: g.Table(starProds), KeyCol: 0, FactCol: 2, Payload: []int{2}},
		)
		agg := g.Aggregate(sj, []int{6, 7}, hana.Agg{Func: hana.Sum, Col: 5})
		if _, err := hana.ExecuteGraph(g, agg, hana.Env{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCSE(b *testing.B, shared bool) {
	starFixture(b)
	// The shared subexpression is a script node (fusion cannot bypass
	// it); CSE runs it once, the duplicated variant per consumer.
	script := func(rows [][]hana.Value) ([][]hana.Value, error) {
		out := make([][]hana.Value, len(rows))
		for i, r := range rows {
			out[i] = []hana.Value{r[0], hana.Int(int64(r[0].F / 100))}
		}
		return out, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := hana.NewGraph()
		mk := func() *hana.Node {
			return g.Script(g.Project(g.Table(starSales), 5), "bucketize", script)
		}
		var left, right *hana.Node
		if shared {
			s := mk()
			left, right = s, s
		} else {
			left, right = mk(), mk()
		}
		a := g.Aggregate(left, []int{1}, hana.Agg{Func: hana.Count})
		c := g.Aggregate(right, []int{1}, hana.Agg{Func: hana.Sum, Col: 0})
		u := g.Union(g.Limit(a, 5), g.Limit(c, 5))
		if _, err := hana.ExecuteGraph(g, u, hana.Env{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_CalcGraph_SharedScript(b *testing.B)     { benchCSE(b, true) }
func BenchmarkE11_CalcGraph_DuplicatedScript(b *testing.B) { benchCSE(b, false) }

// --- E12: unified access ---

func BenchmarkE12_GlobalSortedDict(b *testing.B) {
	f := mainFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.tab.GlobalSortedDict(1).Len() == 0 {
			b.Fatal("empty dict")
		}
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---

// benchAblationMerge measures a full merge with a toggled feature and
// reports the resulting main footprint.
func benchAblationMerge(b *testing.B, compress, compactDicts bool) {
	gen := workload.NewOrderGen(1, 5_000, 500)
	rows := gen.Rows(30_000)
	// Churn: updates create dead versions whose dictionary entries
	// only compaction removes.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := hana.MustOpen(hana.Options{})
		cfg := orderCfg("orders")
		cfg.Compress = compress
		cfg.CompactDicts = compactDicts
		cfg.CheckUnique = false
		tab, _ := db.CreateTable(cfg)
		loadBulk(db, tab, rows)
		// Delete a third of the rows: their values become garbage.
		tx := db.Begin(hana.TxnSnapshot)
		for k := int64(1); k <= 10_000; k++ {
			tab.DeleteKey(tx, hana.Int(rows[k-1][0].I))
		}
		db.Commit(tx)
		b.StartTimer()
		drain(tab)
		b.StopTimer()
		if i == 0 {
			b.ReportMetric(float64(tab.Stats().MainBytes)/20_000, "mainB/liverow")
		}
		db.Close()
		b.StartTimer()
	}
}

func BenchmarkAblation_CompressOn_CompactOn(b *testing.B)  { benchAblationMerge(b, true, true) }
func BenchmarkAblation_CompressOff_CompactOn(b *testing.B) { benchAblationMerge(b, false, true) }
func BenchmarkAblation_CompressOn_CompactOff(b *testing.B) { benchAblationMerge(b, true, false) }

func BenchmarkE12_UniqueCheckedInsert(b *testing.B) {
	db := hana.MustOpen(hana.Options{})
	defer db.Close()
	cfg := orderCfg("orders")
	cfg.CheckUnique = true
	tab, _ := db.CreateTable(cfg)
	gen := workload.NewOrderGen(1, 10_000, 1_000)
	// Spread existing keys across stages.
	loadBulk(db, tab, gen.Rows(20_000))
	drain(tab)
	loadBulk(db, tab, gen.Rows(5_000))
	rows := gen.Rows(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin(hana.TxnSnapshot)
		if _, err := tab.Insert(tx, rows[i]); err != nil {
			b.Fatal(err)
		}
		db.Commit(tx)
	}
}

// --- E13: vectorized batch read path (§3.1) ---

func benchScanAggregate(b *testing.B, batch bool, size int) {
	f := mainFixture(b)
	groupBy := []int{3}
	aggs := []hana.Agg{{Func: hana.Count}, {Func: hana.Sum, Col: 5}, {Func: hana.Sum, Col: 6}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if batch {
			_, err = hana.CollectBatches(&hana.BatchHashAggregate{
				In: &hana.BatchTableScan{Table: f.tab, BatchSize: size}, GroupBy: groupBy, Aggs: aggs,
			})
		} else {
			// The retained row-at-a-time reference pipeline.
			_, err = engine.Collect(&engine.HashAggregate{
				In: &engine.TableScan{Table: f.tab}, GroupBy: groupBy, Aggs: aggs,
			})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13_ScanAggregate_Rows(b *testing.B)       { benchScanAggregate(b, false, 0) }
func BenchmarkE13_ScanAggregate_Batch(b *testing.B)      { benchScanAggregate(b, true, 0) }
func BenchmarkE13_ScanAggregate_Batch64(b *testing.B)    { benchScanAggregate(b, true, 64) }
func BenchmarkE13_ScanAggregate_Batch16384(b *testing.B) { benchScanAggregate(b, true, 16384) }

func BenchmarkE13_LimitPushdown(b *testing.B) {
	f := mainFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := hana.CollectBatches(&hana.BatchLimit{N: 10, In: &hana.BatchTableScan{Table: f.tab}})
		if err != nil || len(rows) != 10 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}
