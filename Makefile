GO ?= go

.PHONY: all build test vet race bench fuzz torture soak staticcheck obs-bench check

# Torture-harness knobs (see internal/torture): the seed and op count
# for the differential run, overridable per invocation:
#   make torture TORTURE_SEED=42 TORTURE_OPS=5000
TORTURE_SEED ?= 1
TORTURE_OPS  ?= 1000
FUZZTIME     ?= 10s

all: check

build:
	$(GO) build ./...

# Tier-1 gate: must always pass.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tests ./...

# Extended static analysis, gated on the tool being installed so the
# gate works on minimal containers (nothing is downloaded). Install
# with: go install honnef.co/go/tools/cmd/staticcheck@latest
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Race-detector pass over the packages with concurrent machinery
# (scheduler, column-parallel merge, HTAP stress tests).
race:
	$(GO) test -race ./internal/core/... ./internal/merge/...

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Short coverage-guided fuzz runs over the three untrusted-input
# surfaces: snapshot decoding, WAL record parsing, server tokenizing.
# Go allows one -fuzz package per invocation, hence three runs.
fuzz:
	$(GO) test ./internal/persist -run '^$$' -fuzz FuzzDecoder -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzWALRecord -fuzztime $(FUZZTIME)
	$(GO) test ./cmd/hanaserver -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME)

# Crash-torture sweep + seeded differential run against the oracle.
# Reproduce a reported failure by re-running with the printed seed.
torture:
	$(GO) test ./internal/torture -run TestCrashTorture -v -count 1
	TORTURE_SEED=$(TORTURE_SEED) TORTURE_OPS=$(TORTURE_OPS) \
		$(GO) test ./internal/torture -run TestDifferentialOracle -v -count 1

# E14 observability gate: the instrumented 1M-row scan must stay
# within 2% of the disabled-registry baseline (internal/obs design
# contract; see EXPERIMENTS.md E14).
obs-bench:
	OBS_BENCH=1 $(GO) test -run TestE14ObsOverhead -count 1 -v -timeout 300s .

# Overload/shutdown soak: the degradation ladder, merge-outage
# recovery, and the graceful-drain workload under the race detector.
soak:
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestDegradationLadder|TestMergeBackoffAndCircuit|TestSchedulerRecoversWithoutManualMerge|TestScanCancellation' \
		./internal/core
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestGracefulDrain|TestMaxConnsShedding|TestAcceptLoopSurvivesTransientErrors|TestOversizedLineReported' \
		./cmd/hanaserver

check: test vet staticcheck race torture soak obs-bench
