GO ?= go

.PHONY: all build test vet race bench fuzz torture soak staticcheck obs-bench race-parallel e15-smoke bench-parallel bench-mixed bench-mixed-smoke sql-smoke chaos-smoke explain-smoke check-regress check

# Torture-harness knobs (see internal/torture): the seed and op count
# for the differential run, overridable per invocation:
#   make torture TORTURE_SEED=42 TORTURE_OPS=5000
TORTURE_SEED ?= 1
TORTURE_OPS  ?= 1000
FUZZTIME     ?= 10s

all: check

build:
	$(GO) build ./...

# Tier-1 gate: must always pass.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tests ./...

# Extended static analysis, gated on the tool being installed so the
# gate works on minimal containers (nothing is downloaded). Install
# with: go install honnef.co/go/tools/cmd/staticcheck@latest
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Race-detector pass over the packages with concurrent machinery
# (scheduler, column-parallel merge, HTAP stress tests).
race:
	$(GO) test -race ./internal/core/... ./internal/merge/...

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Short coverage-guided fuzz runs over the untrusted-input surfaces:
# snapshot decoding, WAL record parsing, server tokenizing, and the
# SQL lexer/parser. Go allows one -fuzz package per invocation, hence
# one run each.
fuzz:
	$(GO) test ./internal/persist -run '^$$' -fuzz FuzzDecoder -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzWALRecord -fuzztime $(FUZZTIME)
	$(GO) test ./cmd/hanaserver -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sql -run '^$$' -fuzz FuzzSQLParse -fuzztime $(FUZZTIME)

# Crash-torture sweep + seeded differential run against the oracle.
# Reproduce a reported failure by re-running with the printed seed.
torture:
	$(GO) test ./internal/torture -run TestCrashTorture -v -count 1
	TORTURE_SEED=$(TORTURE_SEED) TORTURE_OPS=$(TORTURE_OPS) \
		$(GO) test ./internal/torture -run TestDifferentialOracle -v -count 1

# Morsel-parallel scan gate: the -race stress test (concurrent
# parallel scans vs. writers vs. L2→main merges on one table), the
# seeded parallel-vs-sequential differentials, the morsel-boundary
# fuzz check, and the parallel batch-operator differentials.
race-parallel:
	$(GO) test -race -count 1 -timeout 180s \
		-run 'TestParallelScan|TestConcurrentParallelScanStress|TestPlanMorsels' \
		./internal/core
	$(GO) test -race -count 1 -timeout 180s \
		-run 'TestBatchHashAggregateParallel|TestBatchHashJoinParallelBuild|TestBatchTableScanUnordered' \
		./internal/engine

# E15 smoke: the morsel-parallel scaling experiment at reduced scale,
# as a does-it-still-run gate (the recorded trajectory point lives in
# BENCH_parallel_scan.json; regenerate it with bench-parallel).
e15-smoke:
	$(GO) run ./cmd/hanabench -run E15 -scale 0.3

# Full-scale E15 run, recording the scan-scaling trajectory point
# (ROADMAP item 5) for this machine.
bench-parallel:
	$(GO) run ./cmd/hanabench -run E15 -json BENCH_parallel_scan.json

# Sustained mixed-workload trajectory (E16): the two recorded
# scenarios — oltp (90/10 read/write) and htap (50/50 on the OLTP
# side, analysts scanning throughout) — each oracle-verified, writing
# the committed baseline files. Re-record on the machine of record
# when the engine legitimately gets faster or slower.
bench-mixed:
	$(GO) run ./cmd/hanabench mixed -scenario oltp -json BENCH_mixed_oltp.json
	$(GO) run ./cmd/hanabench mixed -scenario htap -json BENCH_mixed_htap.json
	$(GO) run ./cmd/hanabench mixed -scenario sql -json BENCH_mixed_sql.json

# SQL front-end gate under the race detector: the compiler's own
# suite (parser round-trips, typed-AST checks, golden plan shapes,
# morsel-parallel fusion counter), the wire-level SQL command and
# SQL-vs-legacy differential tests, and the SQL-driven mixed workload
# with its oracle differential.
sql-smoke:
	$(GO) test -race -count 1 -timeout 180s ./internal/sql
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestSQLWireCommands|TestSQLWireTransactions|TestSQLLegacyDifferential|TestMixedBenchOverWireSQL' \
		./cmd/hanaserver
	$(GO) test -race -count 1 -timeout 300s -run 'TestMixedSQL' ./internal/bench

# Short deterministic mixed-workload gate under the race detector:
# the harness's own smoke (every op class live, merges mid-run, oracle
# differential), the same-seed determinism check, and the
# over-the-wire run through hanaserver.
bench-mixed-smoke:
	$(GO) test -race -count 1 -timeout 300s \
		-run 'TestMixedSmoke|TestMixedUnderAdmissionControl' ./internal/bench
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestMixedBenchOverWire' ./cmd/hanaserver

# Query-lifecycle and network-chaos gate under the race detector: the
# multi-seed netfault run (mixed SQL workload through fault-injected
# connections, oracle-verified, goroutine-leak checked, one server
# surviving all seeds), the statement timeout / memory budget / KILL
# wire tests, the reconnecting-client suite, and the fault-injector's
# own tests.
chaos-smoke:
	$(GO) test -race -count 1 -timeout 300s \
		-run 'TestChaosWireBench|TestWireStatementTimeout|TestWireMemBudget|TestWireKillMidStatement|TestDrainDuringExecute|TestTornLineNotExecuted' \
		./cmd/hanaserver
	$(GO) test -race -count 1 -timeout 120s ./internal/client ./internal/netfault ./internal/budget

# Regression gate: re-measure both scenarios quickly and compare
# against the committed baselines with the default tolerance band
# (wide on purpose — it trips on collapses, not on host noise).
check-regress:
	$(GO) run ./cmd/hanabench mixed -scenario oltp -ops 2000 -preload 8000 \
		-json .bench_current_oltp.json
	$(GO) run ./cmd/hanabench regress -baseline BENCH_mixed_oltp.json \
		-current .bench_current_oltp.json
	$(GO) run ./cmd/hanabench mixed -scenario htap -ops 2000 -preload 8000 \
		-json .bench_current_htap.json
	$(GO) run ./cmd/hanabench regress -baseline BENCH_mixed_htap.json \
		-current .bench_current_htap.json

# Query-observability gate under the race detector: the pinned
# EXPLAIN ANALYZE oracle (per-operator actual row counts over the
# wire), killed-statement span replay via TRACE <stmt-id>, SLOWLOG
# capture, the TRACE table filter, and the EXPLAIN ANALYZE pass over
# the E16 mixed SQL scenario's statement classes asserting stats-tree/
# plan-shape congruence.
explain-smoke:
	$(GO) test -race -count 1 -timeout 180s \
		-run 'TestWireExplainAnalyzeOracle|TestWireKilledStatementSpans|TestWireSlowLog|TestWireTraceTableFilter' \
		./cmd/hanaserver
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestMixedSQLExplainAnalyze' ./internal/bench
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestExplainAnalyzeOracle|TestStmtSpans|TestSlowQuery|TestCutExplain|TestExplainViaExec' \
		./internal/sql

# E14 observability gate: the instrumented 1M-row scan must stay
# within 2% of the disabled-registry baseline, and the per-operator
# stats plumbing must keep the 1M-row scan-aggregate within 2% of the
# collection-off path (internal/obs design contract; see
# EXPERIMENTS.md E14).
obs-bench:
	OBS_BENCH=1 $(GO) test -run 'TestE14ObsOverhead|TestExplainStatsOverhead' -count 1 -v -timeout 300s .

# Overload/shutdown soak: the degradation ladder, merge-outage
# recovery, and the graceful-drain workload under the race detector.
soak:
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestDegradationLadder|TestMergeBackoffAndCircuit|TestSchedulerRecoversWithoutManualMerge|TestScanCancellation' \
		./internal/core
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestGracefulDrain|TestMaxConnsShedding|TestAcceptLoopSurvivesTransientErrors|TestOversizedLineReported' \
		./cmd/hanaserver

check: test vet staticcheck race race-parallel torture soak obs-bench e15-smoke bench-mixed-smoke sql-smoke chaos-smoke explain-smoke
