GO ?= go

.PHONY: all build test vet race bench check

all: check

build:
	$(GO) build ./...

# Tier-1 gate: must always pass.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the packages with concurrent machinery
# (scheduler, column-parallel merge, HTAP stress tests).
race:
	$(GO) test -race ./internal/core/... ./internal/merge/...

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

check: test vet race
